//! Hidden-test sweeps — Figures 7, 8 and 9 (§6.3.3).
//!
//! Reveal the truth of a random `p%` of tasks to the method (golden
//! tasks) and evaluate on the rest, sweeping `p ∈ {0, 10, …, 50}` and
//! averaging over repeated random splits (the paper repeats 100 times).

use crowd_core::{InferenceOptions, Method};
use crowd_data::datasets::PaperDataset;
use crowd_data::GoldenSplit;

use crate::sweep::{cell_seed, SeedPurpose};
use crate::{parallel_map, run::evaluate, ExpConfig};

/// One method's curve over golden-task fractions.
///
/// A point with **zero successful repeats** is `f64::NAN`, not `0.0` —
/// a missing measurement must stay distinguishable from a genuinely
/// zero score; `failures` says how many repeats went missing.
#[derive(Debug, Clone)]
pub struct HiddenCurve {
    /// The method.
    pub method: Method,
    /// Mean headline quality per `p` (accuracy, or MAE for numeric).
    pub quality: Vec<f64>,
    /// Mean secondary quality per `p` (F1, or RMSE for numeric).
    pub quality2: Vec<f64>,
    /// Per fraction point: repeats with no outcome for this method.
    pub failures: Vec<usize>,
}

/// Result of a hidden-test sweep on one dataset.
#[derive(Debug, Clone)]
pub struct HiddenResult {
    /// The dataset.
    pub dataset: PaperDataset,
    /// The golden fractions swept (e.g. 0.0, 0.1, …, 0.5).
    pub fractions: Vec<f64>,
    /// One curve per golden-capable method.
    pub curves: Vec<HiddenCurve>,
}

/// The 9 methods that can incorporate golden tasks (§6.3.3).
pub fn golden_methods() -> Vec<Method> {
    Method::ALL
        .iter()
        .copied()
        .filter(|m| m.build().supports_golden())
        .collect()
}

/// Run the hidden-test sweep on one dataset. `fractions` defaults to the
/// paper's `0%..50%` in steps of 10.
pub fn hidden_sweep(
    dataset_id: PaperDataset,
    fractions: Option<Vec<f64>>,
    config: &ExpConfig,
) -> HiddenResult {
    let dataset = dataset_id.generate(config.scale, config.seed);
    let fractions = fractions.unwrap_or_else(|| vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
    let methods: Vec<Method> = golden_methods()
        .into_iter()
        .filter(|m| m.supports(dataset.task_type()))
        .collect();

    struct Slot {
        f_idx: usize,
        outcomes: Vec<Option<crate::EvalOutcome>>,
    }
    let mut jobs: Vec<Box<dyn FnOnce() -> Slot + Send>> = Vec::new();
    for rep in 0..config.repeats {
        for (f_idx, &p) in fractions.iter().enumerate() {
            let dataset = &dataset;
            let methods = &methods;
            // Purpose-split streams: the golden-split RNG and the method
            // init RNG must never be the same sequence (they were, before
            // the sweep-path seed fix).
            let split_seed = cell_seed(config.seed, rep, f_idx, SeedPurpose::GoldenSplit);
            let infer_seed = cell_seed(config.seed, rep, f_idx, SeedPurpose::Inference);
            jobs.push(Box::new(move || {
                let split = GoldenSplit::sample(dataset, p, split_seed);
                let opts = InferenceOptions {
                    golden: if p > 0.0 {
                        Some(split.revealed.clone())
                    } else {
                        None
                    },
                    ..InferenceOptions::seeded(infer_seed)
                };
                let outcomes = methods
                    .iter()
                    .map(|&m| evaluate(m, dataset, &opts, Some(&split.eval)))
                    .collect();
                Slot { f_idx, outcomes }
            }));
        }
    }
    let slots = parallel_map(config.threads, jobs);

    let categorical = dataset.task_type().is_categorical();
    let nf = fractions.len();
    let nm = methods.len();
    let mut q1 = vec![vec![0.0; nf]; nm];
    let mut q2 = vec![vec![0.0; nf]; nm];
    let mut counts = vec![vec![0usize; nf]; nm];
    for s in slots {
        for (m_idx, o) in s.outcomes.iter().enumerate() {
            if let Some(o) = o {
                q1[m_idx][s.f_idx] += if categorical { o.accuracy } else { o.mae };
                q2[m_idx][s.f_idx] += if categorical { o.f1 } else { o.rmse };
                counts[m_idx][s.f_idx] += 1;
            }
        }
    }
    let curves = methods
        .iter()
        .enumerate()
        .map(|(m_idx, &method)| {
            let norm = |v: &[f64]| {
                v.iter()
                    .zip(&counts[m_idx])
                    .map(|(&x, &c)| if c > 0 { x / c as f64 } else { f64::NAN })
                    .collect::<Vec<f64>>()
            };
            HiddenCurve {
                method,
                quality: norm(&q1[m_idx]),
                quality2: norm(&q2[m_idx]),
                failures: counts[m_idx].iter().map(|&c| config.repeats - c).collect(),
            }
        })
        .collect();

    HiddenResult {
        dataset: dataset_id,
        fractions,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_methods_support_golden() {
        let ms = golden_methods();
        assert_eq!(ms.len(), 9);
        // The paper's list: ZC, GLAD, D&S, Minimax, LFC, CATD, PM,
        // VI-MF, LFC_N.
        for expected in [
            Method::Zc,
            Method::Glad,
            Method::Ds,
            Method::Minimax,
            Method::Lfc,
            Method::Catd,
            Method::Pm,
            Method::ViMf,
            Method::LfcN,
        ] {
            assert!(ms.contains(&expected), "{} missing", expected.name());
        }
    }

    #[test]
    fn sweep_shape_on_decision_data() {
        let cfg = ExpConfig {
            scale: 0.03,
            repeats: 2,
            seed: 13,
            threads: 4,
        };
        let res = hidden_sweep(PaperDataset::DProduct, Some(vec![0.0, 0.3]), &cfg);
        // 8 golden-capable methods apply to decision-making (all but
        // LFC_N).
        assert_eq!(res.curves.len(), 8);
        for c in &res.curves {
            assert_eq!(c.quality.len(), 2);
            assert!(c.quality.iter().all(|&q| (0.0..=1.0).contains(&q)));
            assert_eq!(c.failures, vec![0, 0], "clean sweep has no failures");
        }
    }

    #[test]
    fn golden_tasks_never_hurt_much_and_generally_help() {
        let cfg = ExpConfig {
            scale: 0.08,
            repeats: 3,
            seed: 13,
            threads: 4,
        };
        let res = hidden_sweep(PaperDataset::SRel, Some(vec![0.0, 0.5]), &cfg);
        // On average across methods, quality at p=50% should be at least
        // quality at p=0 minus noise (the paper: "generally the quality
        // of methods increase with p").
        let avg0: f64 =
            res.curves.iter().map(|c| c.quality[0]).sum::<f64>() / res.curves.len() as f64;
        let avg5: f64 =
            res.curves.iter().map(|c| c.quality[1]).sum::<f64>() / res.curves.len() as f64;
        assert!(
            avg5 > avg0 - 0.02,
            "golden tasks hurt: p0 {avg0} vs p50 {avg5}"
        );
    }

    #[test]
    fn numeric_sweep_uses_errors() {
        let cfg = ExpConfig {
            scale: 0.2,
            repeats: 2,
            seed: 13,
            threads: 4,
        };
        let res = hidden_sweep(PaperDataset::NEmotion, Some(vec![0.0, 0.4]), &cfg);
        // CATD, PM, LFC_N (Figure 9's three methods).
        assert_eq!(res.curves.len(), 3);
        for c in &res.curves {
            assert!(c.quality.iter().all(|&e| e > 0.0), "{:?}", c.quality);
        }
    }
}
