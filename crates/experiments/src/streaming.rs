//! Streaming sweep — accuracy as answers arrive, warm vs cold
//! re-convergence (the serving-shaped experiment the paper's §7(6)
//! future-work points at, built on `crowd-stream`).
//!
//! A simulated collection run ([`crowd_data::collect`], uniform
//! assignment — arrival order interleaves answers across the task
//! universe) is replayed as timed batches into a [`StreamEngine`]; after
//! every batch the engine re-converges twice: once **cold** (from
//! majority vote, the batch baseline) and once **warm** (from the
//! previous converged state). The curve records quality versus answers
//! seen and the iteration cost of both paths.

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{collect, AssignmentStrategy, DataError, StreamSession};
use crowd_metrics::accuracy;
use crowd_stream::{StreamConfig, StreamEngine, StreamError};

use crate::runner::{CancelToken, CellOutcome, SweepCell, SweepProgress, SweepRunner};
use crate::ExpConfig;

/// One point of the streaming curve (one batch).
#[derive(Debug, Clone)]
pub struct StreamCurvePoint {
    /// 0-based batch index.
    pub round: usize,
    /// Answers incorporated after this batch.
    pub answers_seen: usize,
    /// Accuracy of the warm path's estimates against ground truth.
    pub accuracy_warm: f64,
    /// Accuracy of the cold-restart baseline.
    pub accuracy_cold: f64,
    /// EM iterations of the warm re-convergence.
    pub iterations_warm: usize,
    /// EM iterations of the cold restart.
    pub iterations_cold: usize,
}

/// Errors of the streaming sweep.
#[derive(Debug)]
pub enum StreamingSweepError {
    /// The collection simulation rejected the configuration.
    Collection(DataError),
    /// The streaming engine rejected the session or a batch.
    Stream(StreamError),
    /// The grid cell never produced a curve (panicked or cancelled on
    /// the sweep runner); the payload is the runner's cell message.
    Cell(String),
}

impl std::fmt::Display for StreamingSweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Collection(e) => write!(f, "collection failed: {e}"),
            Self::Stream(e) => write!(f, "streaming failed: {e}"),
            Self::Cell(msg) => write!(f, "grid cell lost: {msg}"),
        }
    }
}

impl std::error::Error for StreamingSweepError {}

/// One row of a streaming grid: the (dataset, method) pair and its curve
/// (or why it is missing).
#[derive(Debug)]
pub struct StreamGridRow {
    /// The dataset replayed.
    pub dataset: PaperDataset,
    /// The method re-converged per batch.
    pub method: Method,
    /// The warm-vs-cold curve, or the error that prevented it.
    pub curve: Result<Vec<StreamCurvePoint>, StreamingSweepError>,
}

/// Replay a collection run over `dataset_id`'s configuration as
/// `batches` equal batches and measure the accuracy-vs-answers-seen
/// curve for `method`, warm vs cold.
pub fn streaming_curve(
    dataset_id: PaperDataset,
    method: Method,
    batches: usize,
    config: &ExpConfig,
) -> Result<Vec<StreamCurvePoint>, StreamingSweepError> {
    let sim_cfg = dataset_id.config(config.scale);
    let budget = sim_cfg.num_tasks * sim_cfg.redundancy.max(1);
    let run = collect(&sim_cfg, AssignmentStrategy::Uniform, budget, config.seed)
        .map_err(StreamingSweepError::Collection)?;
    let dataset = &run.dataset;

    let mut engine = StreamEngine::new(StreamConfig::new(
        method,
        dataset.task_type(),
        dataset.num_tasks(),
        dataset.num_workers(),
    ))
    .map_err(StreamingSweepError::Stream)?;

    let batch_size = dataset.num_answers().div_ceil(batches.max(1));
    let mut curve = Vec::new();
    for batch in StreamSession::replay(&run, batch_size) {
        engine
            .push_batch(&batch.records)
            .map_err(|(_, e)| StreamingSweepError::Stream(e))?;
        let cold = engine
            .converge_cold()
            .map_err(StreamingSweepError::Stream)?;
        let warm = engine.converge().map_err(StreamingSweepError::Stream)?;
        curve.push(StreamCurvePoint {
            round: batch.round,
            answers_seen: warm.answers_seen,
            accuracy_warm: accuracy(dataset, &warm.result.truths),
            accuracy_cold: accuracy(dataset, &cold.result.truths),
            iterations_warm: warm.result.iterations,
            iterations_cold: cold.result.iterations,
        });
    }
    Ok(curve)
}

/// Run a grid of `(dataset, method)` streaming curves on the async
/// [`SweepRunner`] — each pair is one cell (a whole replay), scheduled
/// under the runner's concurrency budget with one progress event per
/// finished pair. Row order matches `pairs`; a panicked or cancelled
/// cell yields [`StreamingSweepError::Cell`] instead of taking the grid
/// down.
pub fn streaming_grid(
    pairs: &[(PaperDataset, Method)],
    batches: usize,
    config: &ExpConfig,
    runner: &SweepRunner,
    token: &CancelToken,
    on_progress: impl FnMut(&SweepProgress),
) -> Vec<StreamGridRow> {
    let cells: Vec<SweepCell<Result<Vec<StreamCurvePoint>, StreamingSweepError>>> = pairs
        .iter()
        .map(|&(dataset, method)| {
            let config = *config;
            let label = format!("{}×{}", method.name(), dataset.name());
            SweepCell::new(label, move || {
                streaming_curve(dataset, method, batches, &config)
            })
        })
        .collect();
    let outcome = runner.run(cells, token, on_progress);
    pairs
        .iter()
        .zip(outcome.cells)
        .map(|(&(dataset, method), cell)| StreamGridRow {
            dataset,
            method,
            curve: match cell {
                CellOutcome::Completed(curve) => curve,
                CellOutcome::Failed(msg) => Err(StreamingSweepError::Cell(msg)),
                CellOutcome::Cancelled => Err(StreamingSweepError::Cell("cancelled".into())),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_rises_and_warm_is_cheaper_overall() {
        let cfg = ExpConfig {
            scale: 0.08,
            repeats: 1,
            seed: 11,
            threads: 1,
        };
        let curve = streaming_curve(PaperDataset::DProduct, Method::Ds, 6, &cfg).expect("runs");
        assert_eq!(curve.len(), 6);
        // Quality improves as answers accumulate (allowing small noise).
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(
            last.accuracy_warm >= first.accuracy_warm - 0.02,
            "accuracy fell along the stream: {} → {}",
            first.accuracy_warm,
            last.accuracy_warm
        );
        // Warm and cold agree closely on final quality.
        assert!(
            (last.accuracy_warm - last.accuracy_cold).abs() < 0.03,
            "warm {} vs cold {} final accuracy",
            last.accuracy_warm,
            last.accuracy_cold
        );
        // And the warm path re-converges in strictly fewer total
        // iterations.
        let warm: usize = curve.iter().map(|p| p.iterations_warm).sum();
        let cold: usize = curve.iter().map(|p| p.iterations_cold).sum();
        assert!(warm < cold, "warm {warm} vs cold {cold} total iterations");
    }

    #[test]
    fn grid_rows_match_lone_curves_bit_for_bit() {
        let cfg = ExpConfig {
            scale: 0.05,
            repeats: 1,
            seed: 11,
            threads: 2,
        };
        let pairs = [
            (PaperDataset::DProduct, Method::Ds),
            (PaperDataset::DProduct, Method::Zc),
            (PaperDataset::NEmotion, Method::Ds), // typed error row
        ];
        let runner = SweepRunner::new(cfg.threads);
        let mut events = 0usize;
        let rows = streaming_grid(&pairs, 4, &cfg, &runner, &CancelToken::new(), |_| {
            events += 1
        });
        assert_eq!(rows.len(), 3);
        assert_eq!(events, 3, "one progress event per pair");
        for (row, &(dataset, method)) in rows.iter().zip(&pairs) {
            assert_eq!(row.dataset, dataset);
            assert_eq!(row.method, method);
            let lone = streaming_curve(dataset, method, 4, &cfg);
            match (&row.curve, &lone) {
                (Ok(grid), Ok(lone)) => {
                    assert_eq!(grid.len(), lone.len());
                    for (g, l) in grid.iter().zip(lone) {
                        assert_eq!(g.accuracy_warm.to_bits(), l.accuracy_warm.to_bits());
                        assert_eq!(g.accuracy_cold.to_bits(), l.accuracy_cold.to_bits());
                        assert_eq!(g.iterations_warm, l.iterations_warm);
                    }
                }
                (Err(StreamingSweepError::Collection(_)), Err(_)) => {
                    assert_eq!(dataset, PaperDataset::NEmotion);
                }
                other => panic!("grid/lone outcome mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn numeric_dataset_is_rejected_with_typed_error() {
        let cfg = ExpConfig {
            scale: 0.1,
            repeats: 1,
            seed: 1,
            threads: 1,
        };
        let err = streaming_curve(PaperDataset::NEmotion, Method::Ds, 4, &cfg)
            .expect_err("numeric config must be rejected");
        assert!(matches!(err, StreamingSweepError::Collection(_)));
    }
}
