//! Table 7 — the effect of qualification-test initialisation (§6.3.2).
//!
//! For each of the 8 methods that can initialise worker qualities, run
//! once without initialisation (`c`) and `repeats` times with a
//! bootstrap-simulated qualification test (`c̃`, 20 sampled answers per
//! worker as in the paper), and report both and the benefit `Δ = c̃ − c`.

use crowd_core::{InferenceOptions, Method, QualityInit};
use crowd_data::bootstrap_qualification;
use crowd_data::datasets::PaperDataset;

use crate::sweep::{cell_seed, SeedPurpose};
use crate::{parallel_map, run::evaluate, ExpConfig};

/// Number of golden tasks in the simulated qualification test (paper: 20).
pub const QUALIFICATION_TEST_SIZE: usize = 20;

/// One row of Table 7 for one dataset.
#[derive(Debug, Clone)]
pub struct QualRow {
    /// The method.
    pub method: Method,
    /// Quality without qualification test (accuracy, or MAE for numeric).
    pub baseline: f64,
    /// Quality with qualification test (mean over repeats).
    pub with_qual: f64,
    /// Secondary metric without (F1 or RMSE).
    pub baseline2: f64,
    /// Secondary metric with.
    pub with_qual2: f64,
}

impl QualRow {
    /// The benefit `Δ` on the headline metric.
    pub fn delta(&self) -> f64 {
        self.with_qual - self.baseline
    }
}

/// The 8 methods that support qualification-test initialisation.
pub fn qualification_methods() -> Vec<Method> {
    Method::ALL
        .iter()
        .copied()
        .filter(|m| m.build().supports_qualification())
        .collect()
}

/// Run the Table 7 experiment on one dataset.
pub fn table7(dataset_id: PaperDataset, config: &ExpConfig) -> Vec<QualRow> {
    let dataset = dataset_id.generate(config.scale, config.seed);
    let methods: Vec<Method> = qualification_methods()
        .into_iter()
        .filter(|m| m.supports(dataset.task_type()))
        .collect();

    let rows: Vec<Option<QualRow>> = {
        let mut jobs: Vec<Box<dyn FnOnce() -> Option<QualRow> + Send>> = Vec::new();
        for &method in &methods {
            let dataset = &dataset;
            let repeats = config.repeats;
            let base_seed = config.seed;
            jobs.push(Box::new(move || {
                let baseline =
                    evaluate(method, dataset, &InferenceOptions::seeded(base_seed), None)?;
                let mut q1 = 0.0;
                let mut q2 = 0.0;
                for rep in 0..repeats {
                    // Purpose-split per-repeat streams (shared across
                    // methods so every method sees the same simulated
                    // qualification test): the bootstrap RNG and the
                    // method init RNG must not be the same sequence.
                    let qual_seed = cell_seed(base_seed, rep, 0, SeedPurpose::Bootstrap);
                    let infer_seed = cell_seed(base_seed, rep, 0, SeedPurpose::Inference);
                    let qual = bootstrap_qualification(dataset, QUALIFICATION_TEST_SIZE, qual_seed);
                    let opts = InferenceOptions {
                        quality_init: QualityInit::Qualification(qual.accuracy),
                        ..InferenceOptions::seeded(infer_seed)
                    };
                    let o = evaluate(method, dataset, &opts, None)?;
                    let categorical = dataset.task_type().is_categorical();
                    q1 += if categorical { o.accuracy } else { o.mae };
                    q2 += if categorical { o.f1 } else { o.rmse };
                }
                let categorical = dataset.task_type().is_categorical();
                Some(QualRow {
                    method,
                    baseline: if categorical {
                        baseline.accuracy
                    } else {
                        baseline.mae
                    },
                    baseline2: if categorical {
                        baseline.f1
                    } else {
                        baseline.rmse
                    },
                    with_qual: q1 / repeats as f64,
                    with_qual2: q2 / repeats as f64,
                })
            }));
        }
        parallel_map(config.threads, jobs)
    };
    rows.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_methods_accept_qualification() {
        let ms = qualification_methods();
        assert_eq!(ms.len(), 8);
        // The paper's list: ZC, GLAD, D&S, LFC, CATD, PM, VI-MF, LFC_N.
        for expected in [
            Method::Zc,
            Method::Glad,
            Method::Ds,
            Method::Lfc,
            Method::Catd,
            Method::Pm,
            Method::ViMf,
            Method::LfcN,
        ] {
            assert!(ms.contains(&expected), "{} missing", expected.name());
        }
    }

    #[test]
    fn table7_rows_for_decision_dataset() {
        let cfg = ExpConfig {
            scale: 0.03,
            repeats: 2,
            seed: 11,
            threads: 4,
        };
        let rows = table7(PaperDataset::DProduct, &cfg);
        // 7 of the 8 apply to decision-making (LFC_N is numeric-only).
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.baseline));
            assert!((0.0..=1.0).contains(&r.with_qual));
            // Benefits are small either way (the paper's Δ is within a
            // few points).
            assert!(
                r.delta().abs() < 0.25,
                "{}: Δ {}",
                r.method.name(),
                r.delta()
            );
        }
    }

    #[test]
    fn table7_numeric_dataset_uses_errors() {
        let cfg = ExpConfig {
            scale: 0.2,
            repeats: 2,
            seed: 11,
            threads: 4,
        };
        let rows = table7(PaperDataset::NEmotion, &cfg);
        // CATD, PM, LFC_N apply.
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.baseline > 0.0, "MAE should be positive");
            assert!(r.baseline2 >= r.baseline, "RMSE >= MAE");
        }
    }
}
