//! # crowd-experiments — the benchmark harness
//!
//! One runner per table/figure of the paper's evaluation (Section 6):
//!
//! | Runner | Paper artefact |
//! |---|---|
//! | [`stats_tables::table5`] | Table 5 — dataset statistics |
//! | [`stats_tables::consistency_report`] | §6.2.1 — consistency `C` |
//! | [`stats_tables::fig2_worker_redundancy`] | Figure 2 — redundancy histograms |
//! | [`stats_tables::fig3_worker_quality`] | Figure 3 — quality histograms |
//! | [`sweep::redundancy_sweep`] | Figures 4–6 — quality vs redundancy `r` |
//! | [`full_eval::table6`] | Table 6 — quality & running time, complete data |
//! | [`qualification::table7`] | Table 7 — qualification-test benefit |
//! | [`hidden::hidden_sweep`] | Figures 7–9 — quality vs golden fraction `p%` |
//! | [`streaming::streaming_curve`] | §7(6) extension — accuracy vs answers seen, warm vs cold |
//! | [`multi_tenant::multi_tenant_replay`] | service extension — every categorical dataset as one tenant of a shared `crowd-serve` |
//!
//! All runners are deterministic given an [`ExpConfig`] (scale, repeat
//! count, base seed) and return plain data structures; the `crowd-repro`
//! binary renders them as the same tables/series the paper prints.
//!
//! The heavyweight grids (Figures 4–6, Table 6, streaming/multi-tenant
//! setup) execute on the async **sweep runner** ([`runner::SweepRunner`]):
//! budgeted concurrency on the shared worker-pool substrate, streaming
//! per-cell progress, cooperative cancellation, and per-cell panic
//! isolation — with outputs bit-identical to the sequential blocking
//! reference (pinned in `tests/sweep_runner.rs`).

#![warn(missing_docs)]

pub mod extensions;
pub mod full_eval;
pub mod hidden;
pub mod multi_tenant;
pub mod qualification;
pub mod report;
pub mod run;
pub mod runner;
pub mod stats_tables;
pub mod streaming;
pub mod sweep;

pub use run::{evaluate, EvalOutcome};

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Dataset scale in `(0, 1]` — 1.0 reproduces Table 5's sizes.
    pub scale: f64,
    /// Repeats per configuration (the paper: 30 for redundancy sweeps,
    /// 100 for qualification/hidden tests).
    pub repeats: usize,
    /// Base seed; repeat `k` of any experiment uses `seed + k`.
    pub seed: u64,
    /// Worker threads for repeat-level parallelism.
    pub threads: usize,
}

impl ExpConfig {
    /// Fast smoke configuration (~seconds): 5% scale, 2 repeats.
    pub fn quick() -> Self {
        Self {
            scale: 0.05,
            repeats: 2,
            seed: 7,
            threads: default_threads(),
        }
    }

    /// Default configuration (~minutes): 20% scale, 5 repeats.
    pub fn standard() -> Self {
        Self {
            scale: 0.2,
            repeats: 5,
            seed: 7,
            threads: default_threads(),
        }
    }

    /// Paper-faithful configuration: full scale, 30 repeats.
    pub fn full() -> Self {
        Self {
            scale: 1.0,
            repeats: 30,
            seed: 7,
            threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    crowd_core::exec::default_threads()
}

/// Repeat/sweep-level fan-out, delegated to the workspace-wide execution
/// backend in [`crowd_core::exec`] so the method hot loops, the harness,
/// and the bench crate all share one parallel substrate.
pub(crate) use crowd_core::exec::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..32usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(4, jobs);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![];
        assert!(parallel_map(4, empty).is_empty());
        let one: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(parallel_map(8, one), vec![42]);
    }

    #[test]
    fn configs_are_ordered_by_cost() {
        assert!(ExpConfig::quick().scale < ExpConfig::standard().scale);
        assert!(ExpConfig::standard().scale < ExpConfig::full().scale);
        assert!(ExpConfig::quick().repeats <= ExpConfig::standard().repeats);
    }
}
