//! Dataset-statistics experiments: Table 5, the consistency report
//! (§6.2.1), and the worker histograms of Figures 2 and 3.

use crowd_data::datasets::PaperDataset;
use crowd_data::Dataset;
use crowd_metrics::{
    consistency_categorical, consistency_numeric, worker_accuracies, worker_redundancies,
    worker_rmses,
};
use crowd_stats::Histogram;

use crate::ExpConfig;

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// The dataset.
    pub dataset: PaperDataset,
    /// Number of tasks `n`.
    pub tasks: usize,
    /// Number of tasks with published ground truth.
    pub truths: usize,
    /// Number of collected answers `|V|`.
    pub answers: usize,
    /// Average answers per task `|V|/n`.
    pub redundancy: f64,
    /// Number of workers `|W|`.
    pub workers: usize,
}

/// Compute Table 5 on the simulated datasets.
pub fn table5(config: &ExpConfig) -> Vec<Table5Row> {
    PaperDataset::ALL
        .iter()
        .map(|&id| {
            let d = id.generate(config.scale, config.seed);
            Table5Row {
                dataset: id,
                tasks: d.num_tasks(),
                truths: d.num_truths(),
                answers: d.num_answers(),
                redundancy: d.redundancy(),
                workers: d.num_workers(),
            }
        })
        .collect()
}

/// The consistency statistic `C` per dataset (§6.2.1). Categorical
/// datasets report entropy-based `C ∈ [0,1]`; N_Emotion reports the
/// median-deviation `C`.
pub fn consistency_report(config: &ExpConfig) -> Vec<(PaperDataset, f64)> {
    PaperDataset::ALL
        .iter()
        .map(|&id| {
            let d = id.generate(config.scale, config.seed);
            let c = consistency_categorical(&d)
                .or_else(|| consistency_numeric(&d))
                .expect("every dataset has a consistency statistic");
            (id, c)
        })
        .collect()
}

/// Figure 2: the worker-redundancy histogram of one dataset.
pub fn fig2_worker_redundancy(dataset: &Dataset, bins: usize) -> Histogram {
    let red = worker_redundancies(dataset);
    let max = red.iter().copied().max().unwrap_or(1) as f64;
    let mut h = Histogram::new(0.0, max + 1.0, bins);
    h.extend(red.iter().map(|&r| r as f64));
    h
}

/// Figure 3: the worker-quality histogram of one dataset — accuracy in
/// `[0, 1]` for categorical datasets, RMSE for numeric ones.
pub fn fig3_worker_quality(dataset: &Dataset, bins: usize) -> Histogram {
    if dataset.task_type().is_categorical() {
        let mut h = Histogram::new(0.0, 1.0 + 1e-9, bins);
        h.extend(worker_accuracies(dataset).iter().flatten().copied());
        h
    } else {
        let rmses: Vec<f64> = worker_rmses(dataset).iter().flatten().copied().collect();
        let hi = rmses.iter().copied().fold(1.0f64, f64::max);
        let mut h = Histogram::new(0.0, hi + 1.0, bins);
        h.extend(rmses);
        h
    }
}

/// Summary statistics the paper quotes alongside Figure 3: the average
/// per-worker accuracy (categorical) or RMSE (numeric).
pub fn fig3_average_quality(dataset: &Dataset) -> f64 {
    if dataset.task_type().is_categorical() {
        let accs: Vec<f64> = worker_accuracies(dataset)
            .iter()
            .flatten()
            .copied()
            .collect();
        accs.iter().sum::<f64>() / accs.len().max(1) as f64
    } else {
        let rmses: Vec<f64> = worker_rmses(dataset).iter().flatten().copied().collect();
        rmses.iter().sum::<f64>() / rmses.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_full_scale_matches_paper_counts() {
        let cfg = ExpConfig {
            scale: 1.0,
            repeats: 1,
            seed: 7,
            threads: 1,
        };
        let rows = table5(&cfg);
        let by_name = |n: &str| rows.iter().find(|r| r.dataset.name() == n).unwrap();
        let p = by_name("D_Product");
        assert_eq!(p.tasks, 8315);
        assert_eq!(p.answers, 24945); // 8315 × 3
        assert_eq!(p.workers, 176);
        let s = by_name("D_PosSent");
        assert_eq!(s.tasks, 1000);
        assert_eq!(s.answers, 20000);
        let e = by_name("N_Emotion");
        assert_eq!(e.tasks, 700);
        assert_eq!(e.answers, 7000);
        // Partial truth on the S_ datasets.
        let r = by_name("S_Rel");
        assert!(r.truths < r.tasks);
    }

    #[test]
    fn consistency_report_covers_all_datasets() {
        let cfg = ExpConfig {
            scale: 0.05,
            repeats: 1,
            seed: 7,
            threads: 1,
        };
        let rows = consistency_report(&cfg);
        assert_eq!(rows.len(), 5);
        for (id, c) in &rows {
            if id.task_type().is_categorical() {
                assert!((0.0..=1.0).contains(c), "{}: C {c}", id.name());
            } else {
                assert!(*c > 5.0, "{}: numeric C {c}", id.name());
            }
        }
    }

    #[test]
    fn fig2_histogram_is_long_tailed() {
        let d = PaperDataset::SRel.generate(0.1, 7);
        let h = fig2_worker_redundancy(&d, 20);
        assert_eq!(h.total() as usize, d.num_workers());
        // Long tail: the first bin (few tasks) holds the most workers.
        let first = h.count(0);
        let peak = h.counts().iter().copied().max().unwrap();
        assert_eq!(
            first, peak,
            "redundancy histogram should peak at the light end"
        );
    }

    #[test]
    fn fig3_histogram_counts_workers() {
        let d = PaperDataset::DProduct.generate(0.1, 7);
        let h = fig3_worker_quality(&d, 10);
        assert!(h.total() > 0);
        let avg = fig3_average_quality(&d);
        assert!(
            (avg - 0.79).abs() < 0.08,
            "avg accuracy {avg} vs paper 0.79"
        );
    }

    #[test]
    fn fig3_numeric_average_near_paper() {
        let d = PaperDataset::NEmotion.generate(1.0, 7);
        let avg = fig3_average_quality(&d);
        assert!(
            (avg - 28.9).abs() < 6.0,
            "avg worker RMSE {avg} vs paper 28.9"
        );
    }
}
