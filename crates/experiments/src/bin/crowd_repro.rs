//! `crowd-repro` — regenerate every table and figure of the VLDB 2017
//! truth-inference benchmark on the simulated datasets.
//!
//! ```text
//! crowd-repro [--quick|--standard|--full] [--scale S] [--repeats N]
//!             [--seed K] [--threads T] [--progress] [--metrics]
//!             <experiment> [...]
//!
//! experiments:
//!   table5        dataset statistics (Table 5)
//!   consistency   data-consistency statistic C (§6.2.1)
//!   fig2          worker-redundancy histograms (Figure 2)
//!   fig3          worker-quality histograms (Figure 3)
//!   fig4          redundancy sweep, decision-making (Figure 4)
//!   fig5          redundancy sweep, single-choice (Figure 5)
//!   fig6          redundancy sweep, numeric (Figure 6)
//!   table6        quality & running time on complete data (Table 6)
//!   table7        qualification-test benefit (Table 7)
//!   fig7          hidden test, decision-making (Figure 7)
//!   fig8          hidden test, single-choice (Figure 8)
//!   fig9          hidden test, numeric (Figure 9)
//!   streaming     warm-vs-cold streaming grid on the sweep runner
//!   example       the paper's Section 3 running example (Tables 1–2)
//!   all           everything above
//!
//! `--progress` streams one line per finished sweep cell to stderr while
//! the grid experiments (fig4–6, table6, streaming) run on the async
//! `SweepRunner` — live completed/failed counts, completion order.
//!
//! `--metrics` dumps the process-global `crowd-obs` registry (counters,
//! gauges, latency histograms accumulated across every experiment run)
//! as JSON on stdout after the last experiment. Recording honours the
//! `CROWD_OBS` environment switch; with `CROWD_OBS=0` the dump is
//! structurally valid but all zeros.
//! ```

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_experiments::report::{num, pct, secs, series, table};
use crowd_experiments::runner::{CancelToken, SweepProgress, SweepRunner};
use crowd_experiments::{
    full_eval, hidden, qualification, stats_tables, streaming, sweep, ExpConfig,
};

const EXPERIMENTS: [&str; 17] = [
    "example",
    "table5",
    "consistency",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table6",
    "table7",
    "fig7",
    "fig8",
    "fig9",
    "streaming",
    "assignment",
    "advisor",
    "ablation",
];

/// Render progress events as log lines on stderr (stdout stays clean for
/// the tables/series output). One line per cell, completion order.
fn progress_printer(tag: String, enabled: bool) -> impl FnMut(&SweepProgress) {
    move |p| {
        if enabled {
            eprintln!(
                "[{tag}] {done}/{total} cells (ok {ok}, failed {failed}, cancelled {cancelled}) \
                 — {label} {status:?}",
                done = p.done,
                total = p.total,
                ok = p.completed,
                failed = p.failed,
                cancelled = p.cancelled,
                label = p.label,
                status = p.status,
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ExpConfig::standard();
    let mut progress = false;
    let mut metrics = false;
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config = ExpConfig::quick(),
            "--standard" => config = ExpConfig::standard(),
            "--full" => config = ExpConfig::full(),
            "--scale" => config.scale = parse_next(&mut it, "--scale"),
            "--repeats" => config.repeats = parse_next(&mut it, "--repeats"),
            "--seed" => config.seed = parse_next(&mut it, "--seed"),
            "--threads" => config.threads = parse_next(&mut it, "--threads"),
            "--progress" => progress = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    println!(
        "# crowd-repro  scale={} repeats={} seed={} threads={}\n",
        config.scale, config.repeats, config.seed, config.threads
    );

    for exp in &experiments {
        if exp == "all" {
            for e in EXPERIMENTS {
                run_one(e, &config, progress);
            }
        } else if EXPERIMENTS.contains(&exp.as_str()) {
            run_one(exp, &config, progress);
        } else {
            eprintln!("unknown experiment {exp}");
            print_usage();
            std::process::exit(2);
        }
    }

    if metrics {
        println!("== metrics (crowd-obs registry) ==");
        println!("{}", crowd_obs::snapshot().to_json());
    }
}

fn run_one(name: &str, config: &ExpConfig, progress: bool) {
    match name {
        "table5" => run_table5(config),
        "consistency" => run_consistency(config),
        "fig2" => run_fig2(config),
        "fig3" => run_fig3(config),
        "fig4" => run_sweep(
            config,
            &[PaperDataset::DProduct, PaperDataset::DPosSent],
            "Figure 4",
            progress,
        ),
        "fig5" => run_sweep(
            config,
            &[PaperDataset::SRel, PaperDataset::SAdult],
            "Figure 5",
            progress,
        ),
        "fig6" => run_sweep(config, &[PaperDataset::NEmotion], "Figure 6", progress),
        "table6" => run_table6(config, progress),
        "table7" => run_table7(config),
        "fig7" => run_hidden(
            config,
            &[PaperDataset::DProduct, PaperDataset::DPosSent],
            "Figure 7",
        ),
        "fig8" => run_hidden(
            config,
            &[PaperDataset::SRel, PaperDataset::SAdult],
            "Figure 8",
        ),
        "fig9" => run_hidden(config, &[PaperDataset::NEmotion], "Figure 9"),
        "streaming" => run_streaming(config, progress),
        "example" => run_example(),
        "assignment" => run_assignment(config),
        "advisor" => run_advisor(config),
        "ablation" => run_ablation(config),
        other => unreachable!("validated experiment name {other}"),
    }
}

fn parse_next<T: std::str::FromStr>(
    it: &mut std::iter::Peekable<std::slice::Iter<String>>,
    flag: &str,
) -> T {
    let Some(value) = it.next() else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {value:?} for {flag}");
        std::process::exit(2);
    })
}

fn print_usage() {
    println!(
        "usage: crowd-repro [--quick|--standard|--full] [--scale S] [--repeats N] \
         [--seed K] [--threads T] [--progress] [--metrics] <experiment>...\n\
         experiments: example table5 consistency fig2 fig3 fig4 fig5 fig6 table6 \
         table7 fig7 fig8 fig9 streaming assignment advisor ablation all\n\
         --metrics dumps the crowd-obs registry as JSON after the last experiment"
    );
}

fn run_example() {
    use crowd_core::TruthInference;
    println!("== Section 3 running example (Tables 1–2, method PM) ==");
    let d = crowd_data::toy::paper_example();
    let r = crowd_core::methods::Pm::default()
        .infer(&d, &crowd_core::InferenceOptions::seeded(11))
        .expect("PM runs on the toy example");
    let mut rows = Vec::new();
    for (i, t) in r.truths.iter().enumerate() {
        let label = if t.label() == Some(0) { "T" } else { "F" };
        let truth = if d.truth(i).and_then(|a| a.label()) == Some(0) {
            "T"
        } else {
            "F"
        };
        rows.push(vec![
            format!("t{}", i + 1),
            label.to_string(),
            truth.to_string(),
        ]);
    }
    println!("{}", table(&["task", "PM inferred", "ground truth"], &rows));
    let quality_rows: Vec<Vec<String>> = r
        .worker_quality
        .iter()
        .enumerate()
        .map(|(w, q)| {
            vec![
                format!("w{}", w + 1),
                format!("{:.2}", q.scalar().unwrap_or(0.0)),
            ]
        })
        .collect();
    println!("{}", table(&["worker", "PM quality q^w"], &quality_rows));
}

fn run_table5(config: &ExpConfig) {
    println!("== Table 5: dataset statistics ==");
    let rows: Vec<Vec<String>> = stats_tables::table5(config)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.name().to_string(),
                r.tasks.to_string(),
                r.truths.to_string(),
                r.answers.to_string(),
                format!("{:.1}", r.redundancy),
                r.workers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["Dataset", "#tasks", "#truth", "|V|", "|V|/n", "|W|"],
            &rows
        )
    );
}

fn run_consistency(config: &ExpConfig) {
    println!("== §6.2.1: data consistency C ==");
    println!("(paper: D_Product 0.38, D_PosSent 0.85, S_Rel 0.82, S_Adult 0.39, N_Emotion 20.44)");
    let rows: Vec<Vec<String>> = stats_tables::consistency_report(config)
        .into_iter()
        .map(|(id, c)| vec![id.name().to_string(), format!("{c:.2}")])
        .collect();
    println!("{}", table(&["Dataset", "C"], &rows));
}

fn run_fig2(config: &ExpConfig) {
    println!("== Figure 2: worker redundancy histograms ==");
    for id in PaperDataset::ALL {
        let d = id.generate(config.scale, config.seed);
        let h = stats_tables::fig2_worker_redundancy(&d, 12);
        println!("-- {} ({} workers) --", id.name(), d.num_workers());
        println!("{}", h.render(40));
    }
}

fn run_fig3(config: &ExpConfig) {
    println!("== Figure 3: worker quality histograms ==");
    for id in PaperDataset::ALL {
        let d = id.generate(config.scale, config.seed);
        let h = stats_tables::fig3_worker_quality(&d, 12);
        let avg = stats_tables::fig3_average_quality(&d);
        let unit = if d.task_type().is_categorical() {
            "accuracy"
        } else {
            "RMSE"
        };
        println!("-- {} (avg worker {unit} {:.2}) --", id.name(), avg);
        println!("{}", h.render(40));
    }
}

fn run_sweep(config: &ExpConfig, datasets: &[PaperDataset], figure: &str, progress: bool) {
    // One runner (and thus one budgeted worker pool) shared by the
    // figure's datasets.
    let runner = SweepRunner::new(config.threads);
    for &id in datasets {
        println!("== {figure}: redundancy sweep on {} ==", id.name());
        let res = sweep::redundancy_sweep_observed(
            id,
            None,
            config,
            &runner,
            &CancelToken::new(),
            progress_printer(format!("{figure} {}", id.name()), progress),
        );
        let xs: Vec<f64> = res.redundancies.iter().map(|&r| r as f64).collect();
        let names: Vec<&str> = res.curves.iter().map(|c| c.method.name()).collect();
        if id.task_type().is_categorical() {
            let acc: Vec<Vec<f64>> = res.curves.iter().map(|c| c.accuracy.clone()).collect();
            println!("-- Accuracy --\n{}", series("r", &xs, &names, &acc));
            if matches!(id, PaperDataset::DProduct | PaperDataset::DPosSent) {
                let f1: Vec<Vec<f64>> = res.curves.iter().map(|c| c.f1.clone()).collect();
                println!("-- F1-score --\n{}", series("r", &xs, &names, &f1));
            }
        } else {
            let mae: Vec<Vec<f64>> = res.curves.iter().map(|c| c.mae.clone()).collect();
            println!("-- MAE --\n{}", series("r", &xs, &names, &mae));
            let rmse: Vec<Vec<f64>> = res.curves.iter().map(|c| c.rmse.clone()).collect();
            println!("-- RMSE --\n{}", series("r", &xs, &names, &rmse));
        }
    }
}

fn run_table6(config: &ExpConfig, progress: bool) {
    println!("== Table 6: quality and running time with complete data ==");
    let runner = SweepRunner::new(config.threads);
    let t = full_eval::table6_observed(
        config,
        &runner,
        &CancelToken::new(),
        progress_printer("Table 6".to_string(), progress),
    );
    let mut rows = Vec::new();
    for (m_idx, &method) in t.methods.iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        for (d_idx, &dataset) in t.datasets.iter().enumerate() {
            let cell = &t.cells[m_idx][d_idx];
            match dataset {
                PaperDataset::DProduct | PaperDataset::DPosSent => {
                    row.push(pct(cell.map(|o| o.accuracy)));
                    row.push(pct(cell.map(|o| o.f1)));
                }
                PaperDataset::SRel | PaperDataset::SAdult => {
                    row.push(pct(cell.map(|o| o.accuracy)));
                }
                PaperDataset::NEmotion => {
                    row.push(num(cell.map(|o| o.mae)));
                    row.push(num(cell.map(|o| o.rmse)));
                }
            }
            row.push(secs(cell.map(|o| o.seconds)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        table(
            &[
                "Method", "DPr Acc", "DPr F1", "DPr t", "DPo Acc", "DPo F1", "DPo t", "SRe Acc",
                "SRe t", "SAd Acc", "SAd t", "NEm MAE", "NEm RMSE", "NEm t",
            ],
            &rows
        )
    );
    // A "×" above normally means "not applicable"; cells lost to a panic
    // or cancellation must not hide behind the same symbol.
    for (method, dataset, cause) in &t.lost {
        eprintln!(
            "WARNING: Table 6 cell {}×{} lost ({cause}) — its × is a missing \
             measurement, not inapplicability",
            method.name(),
            dataset.name()
        );
    }
}

fn run_table7(config: &ExpConfig) {
    println!("== Table 7: qualification-test benefit (Δ = with − without) ==");
    for id in PaperDataset::ALL {
        let rows = qualification::table7(id, config);
        if rows.is_empty() {
            continue;
        }
        println!("-- {} --", id.name());
        let categorical = id.task_type().is_categorical();
        // F1 is only meaningful for two-class (decision-making) datasets.
        let decision = matches!(id, PaperDataset::DProduct | PaperDataset::DPosSent);
        let headers: Vec<&str> = if decision {
            vec!["Method", "Acc c~", "Acc D", "F1 c~", "F1 D"]
        } else if categorical {
            vec!["Method", "Acc c~", "Acc D"]
        } else {
            vec!["Method", "MAE c~", "MAE D", "RMSE c~", "RMSE D"]
        };
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let fmt = |v: f64| {
                    if categorical {
                        format!("{:.2}%", 100.0 * v)
                    } else {
                        format!("{v:.2}")
                    }
                };
                let fmtd = |v: f64| {
                    if categorical {
                        format!("{:+.2}%", 100.0 * v)
                    } else {
                        format!("{v:+.2}")
                    }
                };
                let mut row = vec![
                    r.method.name().to_string(),
                    fmt(r.with_qual),
                    fmtd(r.with_qual - r.baseline),
                ];
                if headers.len() == 5 {
                    row.push(fmt(r.with_qual2));
                    row.push(fmtd(r.with_qual2 - r.baseline2));
                }
                row
            })
            .collect();
        println!("{}", table(&headers, &body));
    }
}

fn run_hidden(config: &ExpConfig, datasets: &[PaperDataset], figure: &str) {
    for &id in datasets {
        println!("== {figure}: hidden test on {} ==", id.name());
        let res = hidden::hidden_sweep(id, None, config);
        let xs: Vec<f64> = res.fractions.iter().map(|&p| 100.0 * p).collect();
        let names: Vec<&str> = res.curves.iter().map(|c| c.method.name()).collect();
        let q: Vec<Vec<f64>> = res.curves.iter().map(|c| c.quality.clone()).collect();
        let metric = if id.task_type().is_categorical() {
            "Accuracy"
        } else {
            "MAE"
        };
        println!("-- {metric} --\n{}", series("p%", &xs, &names, &q));
        let q2: Vec<Vec<f64>> = res.curves.iter().map(|c| c.quality2.clone()).collect();
        let metric2 = if id.task_type().is_categorical() {
            "F1"
        } else {
            "RMSE"
        };
        match id {
            PaperDataset::SRel | PaperDataset::SAdult => {}
            _ => println!("-- {metric2} --\n{}", series("p%", &xs, &names, &q2)),
        }
    }
}

fn run_streaming(config: &ExpConfig, progress: bool) {
    println!("== Streaming grid: warm vs cold re-convergence (sweep runner) ==");
    // Every categorical Table-6 dataset × D&S — the headline warm-start
    // comparison of BENCH_stream.json, replayed live on the runner.
    let pairs: Vec<(PaperDataset, Method)> = PaperDataset::ALL
        .into_iter()
        .filter(|d| d.task_type().is_categorical())
        .map(|d| (d, Method::Ds))
        .collect();
    let runner = SweepRunner::new(config.threads);
    let rows = streaming::streaming_grid(
        &pairs,
        8,
        config,
        &runner,
        &CancelToken::new(),
        progress_printer("streaming".to_string(), progress),
    );
    let mut body = Vec::new();
    for row in &rows {
        match &row.curve {
            Ok(curve) => {
                let last = curve.last().expect("non-empty curve");
                let warm: usize = curve.iter().map(|p| p.iterations_warm).sum();
                let cold: usize = curve.iter().map(|p| p.iterations_cold).sum();
                body.push(vec![
                    row.dataset.name().to_string(),
                    row.method.name().to_string(),
                    format!("{}", last.answers_seen),
                    format!("{:.2}%", 100.0 * last.accuracy_warm),
                    format!("{:.2}%", 100.0 * last.accuracy_cold),
                    warm.to_string(),
                    cold.to_string(),
                ]);
            }
            Err(e) => {
                body.push(vec![
                    row.dataset.name().to_string(),
                    row.method.name().to_string(),
                    format!("error: {e}"),
                    "×".into(),
                    "×".into(),
                    "×".into(),
                    "×".into(),
                ]);
            }
        }
    }
    println!(
        "{}",
        table(
            &[
                "Dataset",
                "Method",
                "answers",
                "warm acc",
                "cold acc",
                "warm iters",
                "cold iters",
            ],
            &body
        )
    );
}

fn run_assignment(config: &ExpConfig) {
    use crowd_experiments::extensions::assignment_comparison;
    println!("== Extension (§7(6)): task-assignment strategies at equal budget ==");
    let (methods, rows) = assignment_comparison(config);
    let mut headers: Vec<String> = vec!["Strategy".into(), "answer acc".into()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.strategy.to_string(),
                format!("{:.2}%", 100.0 * r.answer_accuracy),
            ];
            row.extend(
                r.method_accuracy
                    .iter()
                    .map(|a| format!("{:.2}%", 100.0 * a)),
            );
            row
        })
        .collect();
    println!("{}", table(&header_refs, &body));
}

fn run_advisor(config: &ExpConfig) {
    use crowd_experiments::extensions::recommend_redundancy;
    println!("== Extension (§7(3)): redundancy advisor (marginal gain < 1%) ==");
    let mut rows = Vec::new();
    for id in PaperDataset::ALL {
        let res = sweep::redundancy_sweep(id, None, config);
        for method in [Method::Mv, Method::Ds, Method::Mean] {
            if !res.curves.iter().any(|c| c.method == method) {
                continue;
            }
            let eps = if id.task_type().is_categorical() {
                0.01
            } else {
                0.5
            };
            let r_hat = recommend_redundancy(&res, method, eps)
                .map(|r| r.to_string())
                .unwrap_or_else(|| "> max".into());
            rows.push(vec![
                id.name().to_string(),
                method.name().to_string(),
                r_hat,
            ]);
        }
    }
    println!("{}", table(&["Dataset", "Method", "r-hat"], &rows));
}

fn run_ablation(config: &ExpConfig) {
    use crowd_experiments::extensions::ablation_sweeps;
    println!("== Extension: design-choice ablations (on simulated D_Product) ==");
    for abl in ablation_sweeps(config) {
        println!("-- {} --", abl.name);
        let rows: Vec<Vec<String>> = abl
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.value),
                    format!("{:.2}%", 100.0 * p.accuracy),
                    format!("{:.3}s", p.seconds),
                ]
            })
            .collect();
        println!("{}", table(&["value", "Accuracy", "time"], &rows));
    }
}
