//! Single-run evaluation: execute one method on one dataset and score it.

use std::time::Instant;

use crowd_core::{InferenceOptions, Method};
use crowd_data::{Dataset, TaskType};
use crowd_metrics::{accuracy_on, f1_score_on, mae_on, rmse_on};

/// Metrics from one inference run (the cells of Table 6).
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Accuracy (categorical datasets; 0 otherwise).
    pub accuracy: f64,
    /// F1-score on the positive class (decision-making; 0 otherwise).
    pub f1: f64,
    /// Mean absolute error (numeric; 0 otherwise).
    pub mae: f64,
    /// Root mean square error (numeric; 0 otherwise).
    pub rmse: f64,
    /// Wall-clock inference time in seconds.
    pub seconds: f64,
    /// Outer iterations the method ran.
    pub iterations: usize,
    /// Whether the convergence criterion was met.
    pub converged: bool,
}

impl EvalOutcome {
    /// The headline quality number for a task type: accuracy for
    /// categorical datasets, MAE for numeric ones (used by sweeps).
    pub fn headline(&self, task_type: TaskType) -> f64 {
        if task_type.is_categorical() {
            self.accuracy
        } else {
            self.mae
        }
    }
}

/// Run `method` on `dataset` with `options`, scoring on `eval_tasks` when
/// given (hidden-test protocol) or on all truth-labelled tasks otherwise.
///
/// Returns `None` when the method does not support the dataset's task
/// type (the paper's Table 6 marks those cells "×").
pub fn evaluate(
    method: Method,
    dataset: &Dataset,
    options: &InferenceOptions,
    eval_tasks: Option<&[usize]>,
) -> Option<EvalOutcome> {
    let instance = method.build();
    if !instance.supports(dataset.task_type()) {
        return None;
    }
    // The harness already fans out at the repeat/cell level, so cap each
    // method's internal E/M fan-out at one thread unless the caller asked
    // for more — otherwise a full-scale sweep composes two fan-outs and
    // oversubscribes the machine. Thread count never changes results.
    let mut options = options.clone();
    options.threads.get_or_insert(1);
    let start = Instant::now();
    let result = instance
        .infer(dataset, &options)
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", method.name(), dataset.name()));
    let seconds = start.elapsed().as_secs_f64();

    let categorical = dataset.task_type().is_categorical();
    Some(EvalOutcome {
        accuracy: if categorical {
            accuracy_on(dataset, &result.truths, eval_tasks)
        } else {
            0.0
        },
        f1: if dataset.task_type() == TaskType::DecisionMaking {
            f1_score_on(dataset, &result.truths, eval_tasks)
        } else {
            0.0
        },
        mae: if categorical {
            0.0
        } else {
            mae_on(dataset, &result.truths, eval_tasks)
        },
        rmse: if categorical {
            0.0
        } else {
            rmse_on(dataset, &result.truths, eval_tasks)
        },
        seconds,
        iterations: result.iterations,
        converged: result.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::datasets::PaperDataset;

    #[test]
    fn evaluates_supported_method() {
        let d = PaperDataset::DProduct.generate(0.02, 3);
        let out = evaluate(Method::Mv, &d, &InferenceOptions::seeded(1), None).unwrap();
        assert!(out.accuracy > 0.5);
        assert!(out.f1 >= 0.0);
        assert!(out.seconds >= 0.0);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn unsupported_method_returns_none() {
        let d = PaperDataset::NEmotion.generate(0.1, 3);
        assert!(evaluate(Method::Mv, &d, &InferenceOptions::default(), None).is_none());
        assert!(evaluate(Method::Mean, &d, &InferenceOptions::default(), None).is_some());
    }

    #[test]
    fn numeric_metrics_populate() {
        let d = PaperDataset::NEmotion.generate(0.1, 3);
        let out = evaluate(Method::Mean, &d, &InferenceOptions::default(), None).unwrap();
        assert!(out.mae > 0.0);
        assert!(out.rmse >= out.mae);
        assert_eq!(out.accuracy, 0.0);
    }

    #[test]
    fn headline_switches_by_task_type() {
        let d = PaperDataset::DProduct.generate(0.02, 3);
        let out = evaluate(Method::Mv, &d, &InferenceOptions::seeded(1), None).unwrap();
        assert_eq!(out.headline(d.task_type()), out.accuracy);
        let dn = PaperDataset::NEmotion.generate(0.1, 3);
        let on = evaluate(Method::Mean, &dn, &InferenceOptions::default(), None).unwrap();
        assert_eq!(on.headline(dn.task_type()), on.mae);
    }
}
