//! Plain-text rendering of experiment outputs: aligned tables and data
//! series in a gnuplot-friendly layout.

/// Render an aligned ASCII table. `headers.len()` must equal the width of
/// every row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Render an x/series data block: first column is the x value, one column
/// per named series — the format the paper's figures plot.
pub fn series(x_name: &str, xs: &[f64], names: &[&str], columns: &[Vec<f64>]) -> String {
    assert_eq!(names.len(), columns.len(), "series name/data mismatch");
    for c in columns {
        assert_eq!(c.len(), xs.len(), "series length mismatch");
    }
    let mut out = format!("# {x_name}");
    for n in names {
        out.push('\t');
        out.push_str(n);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for c in columns {
            out.push_str(&format!("\t{:.4}", c[i]));
        }
        out.push('\n');
    }
    out
}

/// Format a quality value as a percentage with two decimals (Table 6
/// style), or a dash for missing cells.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.2}%", 100.0 * v),
        None => "×".to_string(),
    }
}

/// Format seconds in the paper's style (e.g. `0.13s`).
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}s"),
        None => "×".to_string(),
    }
}

/// Format a raw float or a dash.
pub fn num(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "×".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["Method", "Accuracy"],
            &[
                vec!["MV".into(), "89.66%".into()],
                vec!["Minimax".into(), "84.09%".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        // borders + header + 2 rows = 6 lines
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == width),
            "ragged table:\n{out}"
        );
        assert!(out.contains("| Minimax | 84.09%"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn series_emits_tabular_block() {
        let out = series(
            "r",
            &[1.0, 2.0],
            &["MV", "D&S"],
            &[vec![0.8, 0.85], vec![0.82, 0.9]],
        );
        assert!(out.starts_with("# r\tMV\tD&S\n"));
        assert!(out.contains("1\t0.8000\t0.8200"));
        assert!(out.contains("2\t0.8500\t0.9000"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(Some(0.8966)), "89.66%");
        assert_eq!(pct(None), "×");
        assert_eq!(secs(Some(0.134)), "0.13s");
        assert_eq!(num(Some(12.0213)), "12.02");
    }
}
