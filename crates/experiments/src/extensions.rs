//! Extension experiments beyond the paper's evaluation, implementing the
//! future directions of Section 7:
//!
//! - [`assignment_comparison`] — §7(6) *Task Assignment*: how do
//!   collection strategies (uniform / quality-focused / uncertainty-
//!   adaptive) change downstream truth-inference quality at equal answer
//!   budget?
//! - [`recommend_redundancy`] — §7(3) *Data Redundancy*: estimate the
//!   redundancy `r̂` beyond which quality stabilises.
//! - [`ablation_sweeps`] — quality/time sensitivity of the design choices
//!   DESIGN.md calls out (LFC prior strength, BCC sample count, GLAD
//!   gradient steps, Multi latent dimensions).

use crowd_core::methods::{Bcc, Glad, Lfc, Multi};
use crowd_core::{InferenceOptions, Method, TruthInference};
use crowd_data::assignment::{collect, AssignmentStrategy};
use crowd_data::datasets::PaperDataset;
use crowd_metrics::accuracy;

use crate::sweep::{cell_seed, SeedPurpose, SweepResult};
use crate::{parallel_map, ExpConfig};

/// One row of the assignment comparison: strategy × method → accuracy.
#[derive(Debug, Clone)]
pub struct AssignmentRow {
    /// Strategy label.
    pub strategy: &'static str,
    /// Mean per-answer accuracy of the collected log.
    pub answer_accuracy: f64,
    /// Mean accuracy per inference method (paired with `methods`).
    pub method_accuracy: Vec<f64>,
}

/// The strategies compared, with their display labels.
fn strategies() -> Vec<(&'static str, AssignmentStrategy)> {
    vec![
        ("uniform", AssignmentStrategy::Uniform),
        (
            "quality-focused",
            AssignmentStrategy::QualityFocused { explore: 0.1 },
        ),
        (
            "uncertainty-adaptive",
            AssignmentStrategy::UncertaintyAdaptive { base: 2 },
        ),
    ]
}

/// Compare assignment strategies at a fixed answer budget on a simulated
/// decision-making crowd, averaging over `config.repeats` seeds.
///
/// Returns `(methods, rows)` — methods give the column order.
pub fn assignment_comparison(config: &ExpConfig) -> (Vec<Method>, Vec<AssignmentRow>) {
    let methods = vec![Method::Mv, Method::Ds, Method::Lfc, Method::Zc];
    // A mid-size decision-making universe with diverse workers: the
    // regime where assignment policy matters.
    let mut sim_cfg = PaperDataset::DProduct.config(config.scale.max(0.05));
    sim_cfg.spammer_fraction = 0.15; // assignment has something to avoid
    let budget = sim_cfg.num_tasks * 5;

    let rows = strategies()
        .into_iter()
        .map(|(label, strategy)| {
            type Job = Box<dyn FnOnce() -> (f64, Vec<f64>) + Send>;
            let jobs: Vec<Job> = (0..config.repeats)
                .map(|rep| {
                    let sim_cfg = sim_cfg.clone();
                    let methods = methods.clone();
                    // Purpose-split streams: the collection simulation
                    // and the method init RNGs must not share a sequence.
                    let collect_seed = cell_seed(config.seed, rep, 0, SeedPurpose::Collection);
                    let infer_seed = cell_seed(config.seed, rep, 0, SeedPurpose::Inference);
                    Box::new(move || {
                        let run = collect(&sim_cfg, strategy, budget, collect_seed)
                            .expect("decision-making config is categorical");
                        let d = &run.dataset;
                        let mut correct = 0usize;
                        for r in d.records() {
                            if Some(r.answer) == d.truth(r.task) {
                                correct += 1;
                            }
                        }
                        let answer_acc = correct as f64 / d.num_answers().max(1) as f64;
                        let method_acc = methods
                            .iter()
                            .map(|m| {
                                let r = m
                                    .build()
                                    .infer(d, &InferenceOptions::seeded(infer_seed))
                                    .expect("decision-making supported");
                                accuracy(d, &r.truths)
                            })
                            .collect();
                        (answer_acc, method_acc)
                    }) as _
                })
                .collect();
            let results = parallel_map(config.threads, jobs);
            let k = results.len().max(1) as f64;
            let answer_accuracy = results.iter().map(|(a, _)| a).sum::<f64>() / k;
            let mut method_accuracy = vec![0.0; methods.len()];
            for (_, accs) in &results {
                for (i, a) in accs.iter().enumerate() {
                    method_accuracy[i] += a / k;
                }
            }
            AssignmentRow {
                strategy: label,
                answer_accuracy,
                method_accuracy,
            }
        })
        .collect();

    (methods, rows)
}

/// §7(3): the smallest redundancy after which a method's marginal quality
/// gain stays below `epsilon` — the paper's "how to estimate the data
/// redundancy with stable quality?".
///
/// Works on a [`SweepResult`] curve (categorical: accuracy; numeric:
/// negated MAE so "gain" is improvement in both cases). Returns `None`
/// when the curve never stabilises within the swept range.
pub fn recommend_redundancy(result: &SweepResult, method: Method, epsilon: f64) -> Option<usize> {
    let curve = result.curves.iter().find(|c| c.method == method)?;
    let quality: Vec<f64> = if curve.accuracy.iter().any(|&a| a > 0.0) {
        curve.accuracy.clone()
    } else {
        curve.mae.iter().map(|&e| -e).collect()
    };
    // r̂ = first r whose *remaining* gains (to every later point) are all
    // below epsilon — a single flat step must not fool the advisor.
    // Sweep curves mark failed/empty points `NaN`: `f64::max` skips them
    // in the future-max fold, and a NaN candidate point never satisfies
    // the `< epsilon` comparison, so missing measurements are never
    // recommended.
    for (i, &r) in result.redundancies.iter().enumerate() {
        let future_max = quality[i..]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if future_max - quality[i] < epsilon {
            return Some(r);
        }
    }
    None
}

/// One ablation point: hyperparameter value → (accuracy, seconds).
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Hyperparameter value (displayed).
    pub value: f64,
    /// Accuracy on the ablation dataset.
    pub accuracy: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// A named ablation curve.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What is being ablated, e.g. `"LFC diagonal prior"`.
    pub name: &'static str,
    /// The measured points.
    pub points: Vec<AblationPoint>,
}

/// Sweep the design choices DESIGN.md calls out, on a simulated
/// D_Product instance.
pub fn ablation_sweeps(config: &ExpConfig) -> Vec<Ablation> {
    let dataset = PaperDataset::DProduct.generate(config.scale.max(0.05), config.seed);
    let opts = InferenceOptions::seeded(config.seed);

    let run = |m: &dyn TruthInference| -> (f64, f64) {
        let start = std::time::Instant::now();
        let r = m.infer(&dataset, &opts).expect("runs on decision data");
        (accuracy(&dataset, &r.truths), start.elapsed().as_secs_f64())
    };

    let mut ablations = Vec::new();

    // 1. LFC prior strength: 0 recovers D&S, large drowns the data.
    let mut points = Vec::new();
    for diag in [0.01, 1.0, 4.0, 16.0, 64.0] {
        let (acc, secs) = run(&Lfc {
            diag_prior: diag,
            off_prior: diag / 4.0,
        });
        points.push(AblationPoint {
            value: diag,
            accuracy: acc,
            seconds: secs,
        });
    }
    ablations.push(Ablation {
        name: "LFC diagonal prior",
        points,
    });

    // 2. BCC retained Gibbs samples: quality vs time.
    let mut points = Vec::new();
    for samples in [5usize, 20, 60, 150] {
        let (acc, secs) = run(&Bcc {
            samples,
            ..Bcc::default()
        });
        points.push(AblationPoint {
            value: samples as f64,
            accuracy: acc,
            seconds: secs,
        });
    }
    ablations.push(Ablation {
        name: "BCC Gibbs samples",
        points,
    });

    // 3. GLAD gradient steps per M-step.
    let mut points = Vec::new();
    for steps in [2usize, 6, 12, 24] {
        let (acc, secs) = run(&Glad {
            gradient_steps: steps,
            ..Glad::default()
        });
        points.push(AblationPoint {
            value: steps as f64,
            accuracy: acc,
            seconds: secs,
        });
    }
    ablations.push(Ablation {
        name: "GLAD gradient steps",
        points,
    });

    // 4. Multi latent dimensions (the paper: more model ≠ more quality).
    let mut points = Vec::new();
    for dims in [1usize, 2, 4, 8] {
        let (acc, secs) = run(&Multi {
            dims,
            ..Multi::default()
        });
        points.push(AblationPoint {
            value: dims as f64,
            accuracy: acc,
            seconds: secs,
        });
    }
    ablations.push(Ablation {
        name: "Multi latent dimensions",
        points,
    });

    ablations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::redundancy_sweep;

    #[test]
    fn assignment_comparison_shapes() {
        let cfg = ExpConfig {
            scale: 0.03,
            repeats: 2,
            seed: 5,
            threads: 4,
        };
        let (methods, rows) = assignment_comparison(&cfg);
        assert_eq!(methods.len(), 4);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.answer_accuracy));
            assert_eq!(row.method_accuracy.len(), 4);
        }
        // Quality-focused collection must raise per-answer accuracy over
        // uniform (the whole point of the strategy).
        let uniform = rows.iter().find(|r| r.strategy == "uniform").unwrap();
        let quality = rows
            .iter()
            .find(|r| r.strategy == "quality-focused")
            .unwrap();
        assert!(
            quality.answer_accuracy > uniform.answer_accuracy,
            "quality-focused {} should beat uniform {}",
            quality.answer_accuracy,
            uniform.answer_accuracy
        );
    }

    #[test]
    fn redundancy_advisor_finds_saturation() {
        let cfg = ExpConfig {
            scale: 0.15,
            repeats: 2,
            seed: 5,
            threads: 4,
        };
        let res = redundancy_sweep(
            PaperDataset::DPosSent,
            Some(vec![1, 2, 4, 8, 12, 16, 20]),
            &cfg,
        );
        let r_hat = recommend_redundancy(&res, Method::Ds, 0.01).expect("saturates");
        assert!(
            (4..=20).contains(&r_hat),
            "D&S on D_PosSent should saturate between r=4 and r=20, got {r_hat}"
        );
        // A tiny epsilon may never be satisfied before the last point —
        // the advisor must return the last point or None, not panic.
        let strict = recommend_redundancy(&res, Method::Ds, 1e-9);
        if let Some(r) = strict {
            assert!(res.redundancies.contains(&r));
        }
    }

    #[test]
    fn advisor_never_recommends_nan_points() {
        use crate::sweep::SweepCurve;
        // A curve whose middle point failed (NaN, one lost repeat): the
        // advisor must not pick r=2, and must not let the NaN poison the
        // future-max scan for the later points.
        let res = SweepResult {
            dataset: PaperDataset::DProduct,
            redundancies: vec![1, 2, 3],
            curves: vec![SweepCurve {
                method: Method::Mv,
                accuracy: vec![0.70, f64::NAN, 0.90],
                f1: vec![0.0; 3],
                mae: vec![0.0; 3],
                rmse: vec![0.0; 3],
                failures: vec![0, 1, 0],
            }],
        };
        assert_eq!(recommend_redundancy(&res, Method::Mv, 0.01), Some(3));
        // All-NaN curve: nothing to recommend.
        let all_nan = SweepResult {
            dataset: PaperDataset::DProduct,
            redundancies: vec![1, 2],
            curves: vec![SweepCurve {
                method: Method::Mv,
                accuracy: vec![f64::NAN; 2],
                f1: vec![f64::NAN; 2],
                mae: vec![f64::NAN; 2],
                rmse: vec![f64::NAN; 2],
                failures: vec![1, 1],
            }],
        };
        assert_eq!(recommend_redundancy(&all_nan, Method::Mv, 0.01), None);
    }

    #[test]
    fn advisor_rejects_unknown_method() {
        let cfg = ExpConfig {
            scale: 0.1,
            repeats: 1,
            seed: 5,
            threads: 2,
        };
        let res = redundancy_sweep(PaperDataset::NEmotion, Some(vec![2, 6, 10]), &cfg);
        assert!(recommend_redundancy(&res, Method::Kos, 0.01).is_none());
        // Numeric curves work through negated MAE.
        let r_hat = recommend_redundancy(&res, Method::Mean, 5.0);
        assert!(r_hat.is_some());
    }

    #[test]
    fn ablations_produce_curves() {
        let cfg = ExpConfig {
            scale: 0.05,
            repeats: 1,
            seed: 5,
            threads: 2,
        };
        let abl = ablation_sweeps(&cfg);
        assert_eq!(abl.len(), 4);
        for a in &abl {
            assert!(a.points.len() >= 4, "{}", a.name);
            for p in &a.points {
                assert!((0.0..=1.0).contains(&p.accuracy), "{}: {p:?}", a.name);
                assert!(p.seconds >= 0.0);
            }
        }
        // BCC accuracy should not collapse at the high-sample end (the
        // quality/time tradeoff is flat-to-rising; wall-clock growth is
        // asserted by the criterion benches where timing is controlled).
        let bcc = abl.iter().find(|a| a.name == "BCC Gibbs samples").unwrap();
        let first = bcc.points.first().unwrap().accuracy;
        let last = bcc.points.last().unwrap().accuracy;
        assert!(
            last >= first - 0.05,
            "BCC quality collapsed with more samples: {first} → {last}"
        );
    }
}
