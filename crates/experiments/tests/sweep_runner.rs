//! The sweep-runner guarantees, pinned (mirroring
//! `crates/serve/tests/multi_session.rs` for the experiment harness):
//!
//! 1. **Bit-identical replay** — the async `SweepRunner` reproduction of
//!    the full Figures 4–6 grids (every Table-6 dataset, default x-axes)
//!    is bit-for-bit equal to the sequential blocking sweep, with one
//!    progress event observed per grid cell.
//! 2. **Cancellation mid-grid** — cancelling between cells stops the
//!    remaining cells, which surface as cancelled outcomes / NaN curve
//!    points rather than hanging or poisoning the run.
//! 3. **Cell-panic isolation** — one panicking cell is reported in its
//!    own outcome; sibling cells complete with unchanged values.

use crowd_data::datasets::PaperDataset;
use crowd_experiments::runner::{CancelToken, CellOutcome, CellStatus, SweepCell, SweepRunner};
use crowd_experiments::sweep::{redundancy_sweep_blocking, redundancy_sweep_observed, SweepResult};
use crowd_experiments::ExpConfig;
use proptest::prelude::*;

/// Every float of a sweep result as raw bits (NaNs compare equal by
/// pattern), plus the exact failure counts.
fn sweep_bits(res: &SweepResult) -> Vec<(u8, Vec<u64>, Vec<usize>)> {
    res.curves
        .iter()
        .map(|c| {
            let mut bits = Vec::new();
            for v in [&c.accuracy, &c.f1, &c.mae, &c.rmse] {
                bits.extend(v.iter().map(|x| x.to_bits()));
            }
            (c.method as u8, bits, c.failures.clone())
        })
        .collect()
}

fn grid_size(res: &SweepResult, repeats: usize) -> usize {
    res.redundancies.len() * repeats
}

#[test]
fn full_figure_grids_bit_identical_to_blocking_path() {
    // The acceptance grid: all five Table-6 datasets (Figures 4, 5 and
    // 6), default paper x-axes, async runner vs sequential blocking
    // reference — bit-identical, with progress observed for every cell.
    let config = ExpConfig {
        scale: 0.02,
        repeats: 2,
        seed: 7,
        threads: 4,
    };
    let runner = SweepRunner::new(config.threads);
    for id in PaperDataset::ALL {
        let mut events = Vec::new();
        let res = redundancy_sweep_observed(id, None, &config, &runner, &CancelToken::new(), |p| {
            events.push((p.index, p.status))
        });
        let blocking = redundancy_sweep_blocking(id, None, &config);
        assert_eq!(res.redundancies, blocking.redundancies, "{}", id.name());
        assert_eq!(
            sweep_bits(&res),
            sweep_bits(&blocking),
            "{}: async sweep diverged from the blocking reference",
            id.name()
        );
        // One progress event per cell, all completed, every index seen.
        assert_eq!(
            events.len(),
            grid_size(&res, config.repeats),
            "{}",
            id.name()
        );
        assert!(events.iter().all(|(_, s)| *s == CellStatus::Completed));
        let mut seen: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..events.len()).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Bit-identity holds across random seeds, repeat counts, thread
    /// budgets, and categorical datasets — not just the pinned grid.
    #[test]
    fn runner_matches_blocking_for_every_categorical_dataset(
        seed in 0u64..1000,
        repeats in 1usize..=3,
        threads in 1usize..=8,
        dataset_sel in 0usize..4,
    ) {
        let categorical: Vec<PaperDataset> = PaperDataset::ALL
            .into_iter()
            .filter(|d| d.task_type().is_categorical())
            .collect();
        let id = categorical[dataset_sel];
        let config = ExpConfig { scale: 0.02, repeats, seed, threads };
        let runner = SweepRunner::new(threads);
        let reds = Some(vec![1, 2, 3]);
        let res = redundancy_sweep_observed(
            id, reds.clone(), &config, &runner, &CancelToken::new(), |_| {},
        );
        let blocking = redundancy_sweep_blocking(id, reds, &config);
        prop_assert_eq!(sweep_bits(&res), sweep_bits(&blocking));
    }
}

#[test]
fn cancellation_mid_grid_stops_remaining_cells() {
    // Runner level: the third cell requests cancellation from inside the
    // grid. With budget 1 the queue drains strictly in order, so the
    // remaining cells must all finish as Cancelled without running their
    // payload.
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let runner = SweepRunner::new(1);
    let token = CancelToken::new();
    let ran = Arc::new(AtomicUsize::new(0));
    let t = token.clone();
    let cells: Vec<SweepCell<usize>> = (0..12usize)
        .map(|i| {
            let ran = Arc::clone(&ran);
            let t = t.clone();
            SweepCell::new(format!("cell {i}"), move || {
                ran.fetch_add(1, Ordering::SeqCst);
                if i == 2 {
                    t.cancel();
                }
                i
            })
        })
        .collect();
    let out = runner.run(cells, &token, |_| {});
    assert_eq!(out.completed, 3, "exactly the pre-cancel cells ran");
    assert_eq!(out.cancelled, 9);
    assert_eq!(out.failed, 0);
    assert_eq!(
        ran.load(Ordering::SeqCst),
        3,
        "cancelled payloads never ran"
    );
    assert_eq!(
        out.cells
            .iter()
            .filter(|c| matches!(c, CellOutcome::Cancelled))
            .count(),
        9
    );

    // Sweep level: a token cancelled before the sweep starts yields a
    // result whose every point is NaN with full failure counts — a
    // visible gap, not a silent zero curve.
    let config = ExpConfig {
        scale: 0.02,
        repeats: 2,
        seed: 3,
        threads: 2,
    };
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let res = redundancy_sweep_observed(
        PaperDataset::DProduct,
        Some(vec![1, 2]),
        &config,
        &SweepRunner::new(2),
        &cancelled,
        |p| assert_eq!(p.status, CellStatus::Cancelled),
    );
    for c in &res.curves {
        assert!(c.accuracy.iter().all(|a| a.is_nan()), "{:?}", c.method);
        assert_eq!(c.failures, vec![config.repeats; 2]);
    }
}

#[test]
fn cell_panic_is_isolated_to_its_outcome() {
    let runner = SweepRunner::new(3);
    let cells: Vec<SweepCell<usize>> = (0..10usize)
        .map(|i| {
            SweepCell::new(format!("cell {i}"), move || {
                if i == 4 {
                    panic!("cell 4 exploded");
                }
                i * 7
            })
        })
        .collect();
    let mut statuses = Vec::new();
    let out = runner.run(cells, &CancelToken::new(), |p| statuses.push(p.status));
    assert_eq!(out.completed, 9);
    assert_eq!(out.failed, 1);
    assert_eq!(out.cancelled, 0);
    assert_eq!(
        statuses
            .iter()
            .filter(|s| **s == CellStatus::Failed)
            .count(),
        1
    );
    for (i, cell) in out.cells.into_iter().enumerate() {
        match cell {
            CellOutcome::Completed(v) => assert_eq!(v, i * 7, "sibling value changed"),
            CellOutcome::Failed(msg) => {
                assert_eq!(i, 4);
                assert!(msg.contains("cell 4 exploded"), "{msg}");
            }
            CellOutcome::Cancelled => panic!("no cell was cancelled"),
        }
    }
    // The runner (and its pool) stays usable after a cell panic.
    let again = runner.run(
        vec![SweepCell::new("after", || 99usize)],
        &CancelToken::new(),
        |_| {},
    );
    assert_eq!(again.completed, 1);
}
