//! Delta-buffered CSR answer views — the data layer of the streaming
//! subsystem.
//!
//! The batch substrate stores a dataset's adjacencies in CSR form
//! ([`crowd_core::views::Cat`]/[`Num`]): one flat entry buffer per
//! direction, rebuilt from scratch by `from_triples`. A stream cannot
//! afford that rebuild per answer, so the delta views split the log in
//! two:
//!
//! - a **base** CSR holding the compacted prefix of the arrival-order
//!   answer log, and
//! - an **append-side delta buffer**: per-row `Vec`s holding the suffix
//!   that arrived since the last compaction (`O(1)` amortised per
//!   answer).
//!
//! A row's logical view is the base slice chained with its delta — and
//! because the base always covers a *prefix* of arrival order and the
//! counting sort inside `from_triples` is stable, that chained sequence
//! is exactly the row a one-shot build over the full log would produce.
//! [`DeltaCat::compact`] rebuilds the base from the full log, so the
//! compacted view is **bit-identical to a full `from_triples` rebuild**
//! regardless of how appends and compactions interleave (property-tested
//! in `tests/delta_equivalence.rs`).

use crowd_core::views::{Cat, Csr, Num};

use crate::StreamError;

/// Default auto-compaction policy: compact when the delta suffix exceeds
/// this fraction of the compacted prefix (and at least
/// [`COMPACT_MIN_DELTA`] answers), which keeps the amortised maintenance
/// cost per answer constant.
pub const COMPACT_FRACTION: f64 = 0.25;

/// Never auto-compact below this many buffered answers — tiny rebuilds
/// cost more in constant overhead than the delta walk saves.
pub const COMPACT_MIN_DELTA: usize = 1024;

/// An incrementally maintained categorical answer view: base CSR plus
/// delta buffer, with compaction into a [`Cat`] the view-level inference
/// entry points (`Ds::infer_view` &c.) consume directly.
#[derive(Debug)]
pub struct DeltaCat {
    n: usize,
    m: usize,
    l: usize,
    /// Full answer log in arrival order (`(task, worker, label)`).
    records: Vec<(u32, u32, u8)>,
    /// How many of `records` are reflected in `base`.
    compacted: usize,
    /// CSR views over `records[..compacted]`.
    base: Cat,
    /// Arrival-order suffix per task: `(worker, label)`.
    delta_by_task: Vec<Vec<(u32, u8)>>,
    /// Arrival-order suffix per worker: `(task, label)`.
    delta_by_worker: Vec<Vec<(u32, u8)>>,
}

impl DeltaCat {
    /// An empty view over a fixed `n × m` universe with `l` choices.
    ///
    /// # Panics
    /// Panics if `l == 0`.
    pub fn new(n: usize, m: usize, l: usize) -> Self {
        assert!(l > 0, "need at least one choice");
        Self {
            n,
            m,
            l,
            records: Vec::new(),
            compacted: 0,
            base: build_cat(n, m, l, &[]),
            delta_by_task: vec![Vec::new(); n],
            delta_by_worker: vec![Vec::new(); m],
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.n
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.m
    }

    /// Number of choices ℓ.
    pub fn num_choices(&self) -> usize {
        self.l
    }

    /// Total answers (compacted + buffered).
    pub fn num_answers(&self) -> usize {
        self.records.len()
    }

    /// Answers buffered since the last compaction.
    pub fn delta_len(&self) -> usize {
        self.records.len() - self.compacted
    }

    /// Whether the base CSR reflects every answer.
    pub fn is_compacted(&self) -> bool {
        self.delta_len() == 0
    }

    /// Append one answer. Validates ranges; duplicate detection is the
    /// caller's job (the [`crate::StreamEngine`] tracks a seen-set).
    pub fn push(&mut self, task: usize, worker: usize, label: u8) -> Result<(), StreamError> {
        if task >= self.n {
            return Err(StreamError::TaskOutOfRange {
                task,
                num_tasks: self.n,
            });
        }
        if worker >= self.m {
            return Err(StreamError::WorkerOutOfRange {
                worker,
                num_workers: self.m,
            });
        }
        if label as usize >= self.l {
            return Err(StreamError::LabelOutOfRange {
                label,
                num_choices: self.l,
            });
        }
        self.records.push((task as u32, worker as u32, label));
        self.delta_by_task[task].push((worker as u32, label));
        self.delta_by_worker[worker].push((task as u32, label));
        Ok(())
    }

    /// Merge the delta buffer into the base CSR. After this call
    /// [`Self::as_cat`] serves every answer from flat memory. The rebuilt
    /// base is bit-identical to a one-shot `from_triples` build over the
    /// full arrival-order log.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        self.base = build_cat(self.n, self.m, self.l, &self.records);
        self.compacted = self.records.len();
        for row in &mut self.delta_by_task {
            row.clear();
        }
        for row in &mut self.delta_by_worker {
            row.clear();
        }
    }

    /// Compact when the delta has outgrown the policy bounds (see
    /// [`COMPACT_FRACTION`]); returns whether a compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        let delta = self.delta_len();
        if delta >= COMPACT_MIN_DELTA && delta as f64 >= self.compacted as f64 * COMPACT_FRACTION {
            self.compact();
            true
        } else {
            false
        }
    }

    /// The fully-compacted CSR view, for the view-level inference entry
    /// points.
    ///
    /// # Panics
    /// Panics if the delta buffer is non-empty — call [`Self::compact`]
    /// first (the engine does).
    pub fn as_cat(&self) -> &Cat {
        assert!(
            self.is_compacted(),
            "view has {} uncompacted answers",
            self.delta_len()
        );
        &self.base
    }

    /// Answers on task `t` — base slice chained with the delta suffix,
    /// in arrival order, without compacting.
    pub fn task_answers(&self, t: usize) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.base
            .task_row(t)
            .iter()
            .copied()
            .chain(self.delta_by_task[t].iter().copied())
    }

    /// Answers by worker `w` — base slice chained with the delta suffix,
    /// in arrival order, without compacting.
    pub fn worker_answers(&self, w: usize) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.base
            .worker_row(w)
            .iter()
            .copied()
            .chain(self.delta_by_worker[w].iter().copied())
    }

    /// Per-task plurality label over *all* answers (including the
    /// uncompacted delta): the O(answers-on-task) live estimate served
    /// between converges. `None` for unanswered tasks; exact ties go to
    /// the smallest label (deterministic).
    pub fn plurality(&self, t: usize, counts: &mut Vec<usize>) -> Option<u8> {
        counts.clear();
        counts.resize(self.l, 0);
        let mut any = false;
        for (_, label) in self.task_answers(t) {
            counts[label as usize] += 1;
            any = true;
        }
        if !any {
            return None;
        }
        let mut best = 0usize;
        for (k, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = k;
            }
        }
        Some(best as u8)
    }

    /// Answers by worker `w` so far (base + delta), without compacting.
    pub fn worker_answer_count(&self, w: usize) -> usize {
        self.base.worker_len(w) + self.delta_by_worker[w].len()
    }

    /// The full arrival-order log (for materialising datasets/fixtures).
    pub fn records(&self) -> &[(u32, u32, u8)] {
        &self.records
    }
}

fn build_cat(n: usize, m: usize, l: usize, records: &[(u32, u32, u8)]) -> Cat {
    let task_adj = Csr::from_triples(n, records.iter().map(|&(t, w, v)| (t as usize, w, v)));
    let worker_adj = Csr::from_triples(m, records.iter().map(|&(t, w, v)| (w as usize, t, v)));
    Cat::from_parts(n, m, l, task_adj, worker_adj, vec![None; n])
}

/// An incrementally maintained numeric answer view (the [`Num`]
/// counterpart of [`DeltaCat`]): same base + delta design, same
/// compaction guarantee.
#[derive(Debug)]
pub struct DeltaNum {
    n: usize,
    m: usize,
    records: Vec<(u32, u32, f64)>,
    compacted: usize,
    base: Num,
    delta_by_task: Vec<Vec<(u32, f64)>>,
    delta_by_worker: Vec<Vec<(u32, f64)>>,
}

impl DeltaNum {
    /// An empty view over a fixed `n × m` universe.
    pub fn new(n: usize, m: usize) -> Self {
        Self {
            n,
            m,
            records: Vec::new(),
            compacted: 0,
            base: build_num(n, m, &[]),
            delta_by_task: vec![Vec::new(); n],
            delta_by_worker: vec![Vec::new(); m],
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.n
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.m
    }

    /// Total answers (compacted + buffered).
    pub fn num_answers(&self) -> usize {
        self.records.len()
    }

    /// Answers buffered since the last compaction.
    pub fn delta_len(&self) -> usize {
        self.records.len() - self.compacted
    }

    /// Whether the base CSR reflects every answer.
    pub fn is_compacted(&self) -> bool {
        self.delta_len() == 0
    }

    /// Append one numeric answer (must be finite).
    pub fn push(&mut self, task: usize, worker: usize, value: f64) -> Result<(), StreamError> {
        if task >= self.n {
            return Err(StreamError::TaskOutOfRange {
                task,
                num_tasks: self.n,
            });
        }
        if worker >= self.m {
            return Err(StreamError::WorkerOutOfRange {
                worker,
                num_workers: self.m,
            });
        }
        if !value.is_finite() {
            return Err(StreamError::NonFiniteValue { value });
        }
        self.records.push((task as u32, worker as u32, value));
        self.delta_by_task[task].push((worker as u32, value));
        self.delta_by_worker[worker].push((task as u32, value));
        Ok(())
    }

    /// Merge the delta buffer into the base CSR (bit-identical to a
    /// one-shot rebuild over the full log).
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        self.base = build_num(self.n, self.m, &self.records);
        self.compacted = self.records.len();
        for row in &mut self.delta_by_task {
            row.clear();
        }
        for row in &mut self.delta_by_worker {
            row.clear();
        }
    }

    /// The fully-compacted numeric view.
    ///
    /// # Panics
    /// Panics if the delta buffer is non-empty.
    pub fn as_num(&self) -> &Num {
        assert!(
            self.is_compacted(),
            "view has {} uncompacted answers",
            self.delta_len()
        );
        &self.base
    }

    /// Answers on task `t` — base chained with delta, in arrival order.
    pub fn task_answers(&self, t: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.base
            .task(t)
            .map(|(w, v)| (w as u32, v))
            .chain(self.delta_by_task[t].iter().copied())
    }

    /// Running mean estimate per task over all answers (including the
    /// uncompacted delta); `None` for unanswered tasks.
    pub fn mean(&self, t: usize) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for (_, v) in self.task_answers(t) {
            total += v;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }
}

fn build_num(n: usize, m: usize, records: &[(u32, u32, f64)]) -> Num {
    let task_adj = Csr::from_triples(n, records.iter().map(|&(t, w, v)| (t as usize, w, v)));
    let worker_adj = Csr::from_triples(m, records.iter().map(|&(t, w, v)| (w as usize, t, v)));
    Num::from_parts(n, m, task_adj, worker_adj, vec![None; n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_ranges() {
        let mut v = DeltaCat::new(3, 2, 2);
        assert!(v.push(0, 0, 1).is_ok());
        assert!(matches!(
            v.push(3, 0, 0),
            Err(StreamError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            v.push(0, 2, 0),
            Err(StreamError::WorkerOutOfRange { .. })
        ));
        assert!(matches!(
            v.push(0, 1, 2),
            Err(StreamError::LabelOutOfRange { .. })
        ));
        assert_eq!(v.num_answers(), 1);
    }

    #[test]
    fn chained_rows_see_delta_before_compaction() {
        let mut v = DeltaCat::new(2, 2, 2);
        v.push(0, 0, 1).unwrap();
        v.compact();
        v.push(0, 1, 0).unwrap();
        assert!(!v.is_compacted());
        let row: Vec<(u32, u8)> = v.task_answers(0).collect();
        assert_eq!(row, vec![(0, 1), (1, 0)]);
        let wrow: Vec<(u32, u8)> = v.worker_answers(1).collect();
        assert_eq!(wrow, vec![(0, 0)]);
    }

    #[test]
    fn plurality_counts_delta_and_breaks_ties_low() {
        let mut v = DeltaCat::new(2, 3, 3);
        let mut scratch = Vec::new();
        assert_eq!(v.plurality(0, &mut scratch), None);
        v.push(0, 0, 2).unwrap();
        v.compact();
        v.push(0, 1, 1).unwrap();
        assert_eq!(v.plurality(0, &mut scratch), Some(1), "tie goes low");
        v.push(0, 2, 2).unwrap();
        assert_eq!(v.plurality(0, &mut scratch), Some(2));
    }

    #[test]
    fn maybe_compact_follows_policy() {
        let mut v = DeltaCat::new(10, 10, 2);
        for i in 0..100 {
            v.push(i % 10, (i / 10) % 10, (i % 2) as u8).unwrap();
        }
        // Below COMPACT_MIN_DELTA: no auto-compaction.
        assert!(!v.maybe_compact());
        assert_eq!(v.delta_len(), 100);
        v.compact();
        assert!(v.is_compacted());
        assert_eq!(v.num_answers(), 100);
    }

    #[test]
    fn numeric_view_round_trips() {
        let mut v = DeltaNum::new(2, 2);
        v.push(0, 0, 1.0).unwrap();
        v.push(0, 1, 3.0).unwrap();
        assert!(matches!(
            v.push(1, 0, f64::NAN),
            Err(StreamError::NonFiniteValue { .. })
        ));
        assert_eq!(v.mean(0), Some(2.0));
        assert_eq!(v.mean(1), None);
        v.compact();
        assert_eq!(v.as_num().task_len(0), 2);
        v.push(1, 0, -4.0).unwrap();
        assert_eq!(v.mean(1), Some(-4.0));
    }
}
