//! # crowd-stream — incremental truth inference over live answer streams
//!
//! The benchmark paper treats truth inference as a static batch problem;
//! its future-work section (§7(6)) asks what happens when answers
//! *arrive over time*. This crate is that answer, built on the
//! flat-memory substrate:
//!
//! - **Delta-buffered CSR views** ([`DeltaCat`]/[`DeltaNum`]): `O(1)`
//!   amortised appends into per-row delta buffers on top of the compacted
//!   base CSR, with periodic compaction that is bit-identical to a full
//!   `from_triples` rebuild (property-tested over arbitrary interleavings
//!   of appends and compactions).
//! - **Warm-start re-convergence** ([`StreamEngine`]): each batch
//!   re-converges the method from the previous converged posteriors and
//!   worker-quality parameters (`crowd_core::WarmStart`) instead of from
//!   majority vote, via the view-level entry points (`Ds::infer_view`
//!   &c.) — no dataset materialisation, no cold restart. On the paper's
//!   categorical datasets this cuts per-batch EM iterations by roughly
//!   an order of magnitude (see `BENCH_stream.json`).
//! - **Typed errors** ([`StreamError`]): malformed answers are rejected
//!   per record, leaving the engine state untouched.
//!
//! The stream *source* lives in `crowd-data`
//! ([`StreamSession`](crowd_data::StreamSession) replays simulated
//! collection runs as timed batches); the accuracy-vs-answers-seen sweep
//! lives in `crowd-experiments`; `crowd-bench` ships the
//! `crowd-stream-bench` binary that emits `BENCH_stream.json`.
//!
//! ```
//! use crowd_core::Method;
//! use crowd_data::{datasets::PaperDataset, StreamSession};
//! use crowd_stream::{StreamConfig, StreamEngine};
//!
//! let d = PaperDataset::DPosSent.generate(0.05, 7);
//! let mut engine = StreamEngine::new(StreamConfig::new(
//!     Method::Ds,
//!     d.task_type(),
//!     d.num_tasks(),
//!     d.num_workers(),
//! ))
//! .unwrap();
//! for batch in StreamSession::from_dataset(&d, 250) {
//!     engine.push_batch(&batch.records).unwrap();
//!     let report = engine.converge().unwrap();
//!     assert!(report.result.converged);
//! }
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod engine;

pub use delta::{DeltaCat, DeltaNum};
pub use engine::{
    ConvergeBudget, EngineCheckpoint, EngineSummary, StreamConfig, StreamEngine, StreamReport,
};

use crowd_core::InferenceError;
use crowd_data::TaskType;
use std::fmt;

/// Errors raised by the streaming subsystem.
#[derive(Debug)]
pub enum StreamError {
    /// An answer referenced a task outside the session's universe.
    TaskOutOfRange {
        /// The offending task index.
        task: usize,
        /// Tasks in the session.
        num_tasks: usize,
    },
    /// An answer referenced a worker outside the session's universe.
    WorkerOutOfRange {
        /// The offending worker index.
        worker: usize,
        /// Workers in the session.
        num_workers: usize,
    },
    /// A categorical answer used a label outside `0..ℓ`.
    LabelOutOfRange {
        /// The offending label.
        label: u8,
        /// Number of choices ℓ.
        num_choices: usize,
    },
    /// A numeric answer was not finite.
    NonFiniteValue {
        /// The offending value.
        value: f64,
    },
    /// The same worker answered the same task twice.
    DuplicateAnswer {
        /// The task index.
        task: usize,
        /// The worker index.
        worker: usize,
    },
    /// An answer's kind did not match the stream's task type.
    AnswerKindMismatch {
        /// What was wrong.
        detail: String,
    },
    /// The session's task type has no streaming path.
    UnsupportedTaskType {
        /// The offending task type.
        task_type: TaskType,
    },
    /// The method has no streaming (warm-start) path.
    UnsupportedMethod {
        /// The method's display name.
        method: &'static str,
    },
    /// `converge` was called before any answer arrived.
    EmptyStream,
    /// A checkpoint was installed onto an engine holding a different
    /// answer-log prefix (see
    /// [`StreamEngine::restore_checkpoint`](crate::StreamEngine::restore_checkpoint)).
    CheckpointMismatch {
        /// Answers the checkpoint was taken over.
        checkpoint_answers: usize,
        /// Answers the engine has absorbed.
        engine_answers: usize,
    },
    /// The underlying inference run failed.
    Inference(InferenceError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TaskOutOfRange { task, num_tasks } => {
                write!(f, "task {task} out of range (session has {num_tasks})")
            }
            Self::WorkerOutOfRange {
                worker,
                num_workers,
            } => {
                write!(
                    f,
                    "worker {worker} out of range (session has {num_workers})"
                )
            }
            Self::LabelOutOfRange { label, num_choices } => {
                write!(f, "label {label} out of range (ℓ = {num_choices})")
            }
            Self::NonFiniteValue { value } => write!(f, "non-finite numeric answer {value}"),
            Self::DuplicateAnswer { task, worker } => {
                write!(f, "worker {worker} already answered task {task}")
            }
            Self::AnswerKindMismatch { detail } => write!(f, "answer kind mismatch: {detail}"),
            Self::UnsupportedTaskType { task_type } => {
                write!(f, "no streaming path for task type {task_type:?}")
            }
            Self::UnsupportedMethod { method } => {
                write!(f, "method {method} has no streaming (warm-start) path")
            }
            Self::EmptyStream => write!(f, "stream has no answers yet"),
            Self::CheckpointMismatch {
                checkpoint_answers,
                engine_answers,
            } => write!(
                f,
                "checkpoint over {checkpoint_answers} answers cannot be installed on an \
                 engine holding {engine_answers}"
            ),
            Self::Inference(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InferenceError> for StreamError {
    fn from(e: InferenceError) -> Self {
        Self::Inference(e)
    }
}
