//! The streaming inference engine: answer deltas in, warm re-converged
//! truth estimates out.

use crowd_core::methods::{Ds, Glad, Lfc, Mv, Zc};
use crowd_core::views::ShardedView;
use crowd_core::{InferenceOptions, InferenceResult, Method, WarmStart, WorkerQuality};
use crowd_data::{Answer, AnswerRecord, TaskType};

use crate::delta::DeltaCat;
use crate::StreamError;

use std::sync::OnceLock;

// Cached `stream.engine.*` metric handles (see ARCHITECTURE.md §
// Observability for the naming scheme). Registration happens once per
// process; the hot paths below touch only atomics.
fn obs_batches() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("stream.engine.batches_total"))
}
fn obs_batch_answers() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("stream.engine.batch_answers_total"))
}
fn obs_push_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("stream.engine.batch_push_seconds"))
}
fn obs_converge_seconds() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("stream.engine.converge_seconds"))
}
fn obs_converge_iterations() -> &'static crowd_obs::Histogram {
    static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| crowd_obs::histogram("stream.engine.converge_iterations"))
}
fn obs_warm_resumes() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("stream.engine.warm_resumes_total"))
}
fn obs_cold_converges() -> &'static crowd_obs::Counter {
    static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
    H.get_or_init(|| crowd_obs::counter("stream.engine.cold_converges_total"))
}

/// Pseudo-count governing how fast warm worker state earns full trust:
/// a worker's warm quality keeps weight `c / (c + 12)` after `c`
/// answers (half trust at 12 answers, ~90% at 100).
pub const WARM_SHRINKAGE_PSEUDOCOUNT: f64 = 12.0;

/// Configuration of a streaming session: a fixed task/worker universe, a
/// method, and the inference options every converge reuses.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The inference method re-converged per batch. Supported: the
    /// EM-family categorical methods with warm starts (`Ds`, `Lfc`,
    /// `Zc`, `Glad`) plus `Mv` (recomputed directly from the view).
    pub method: Method,
    /// The task type (must be categorical).
    pub task_type: TaskType,
    /// Number of tasks `n` (fixed for the session).
    pub num_tasks: usize,
    /// Number of workers `m` (fixed for the session).
    pub num_workers: usize,
    /// Options forwarded to every converge (`warm_start` is managed by
    /// the engine and overwritten; `golden` is not supported and
    /// ignored).
    pub options: InferenceOptions,
    /// Task-range shards the session converges over. `1` (the default)
    /// keeps the legacy flat-view path; above that the engine maintains a
    /// [`ShardedView`] and routes converges through the per-shard EM
    /// entry points (`Ds::infer_sharded` &c.; `Mv` through the flatten
    /// shim), rebuilding only the shards whose task ranges received
    /// answers since the previous converge. Results are invariant in
    /// this knob (see `tests` and `crowd_core::views::sharded`).
    pub shard_count: usize,
}

impl StreamConfig {
    /// A config with default options.
    pub fn new(method: Method, task_type: TaskType, num_tasks: usize, num_workers: usize) -> Self {
        Self {
            method,
            task_type,
            num_tasks,
            num_workers,
            options: InferenceOptions::default(),
            shard_count: 1,
        }
    }

    /// Converge over `shard_count` task-range shards (clamped to ≥ 1).
    pub fn with_shards(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count.max(1);
        self
    }
}

/// Iteration budget for one drain-tick converge (`crowd-serve`'s unit of
/// fairness): the EM loop runs at most this many outer iterations this
/// tick, and a session that runs out resumes from its warm state on the
/// next tick instead of monopolising a shard executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergeBudget {
    /// Outer-iteration cap for this converge (further capped by the
    /// session's own `options.max_iterations`; values of 0 are treated
    /// as 1 — a converge that cannot iterate is not a converge).
    pub max_iterations: usize,
}

impl ConvergeBudget {
    /// A budget of `max_iterations` outer iterations.
    pub fn iterations(max_iterations: usize) -> Self {
        Self { max_iterations }
    }
}

impl Default for ConvergeBudget {
    /// No effective cap beyond the session's own `max_iterations`.
    fn default() -> Self {
        Self {
            max_iterations: usize::MAX,
        }
    }
}

/// The warm-resumable state of a [`StreamEngine`] at a quiescent point —
/// everything recovery needs **besides** the answer log itself.
///
/// The answer log (and everything derived from it: delta views, seen
/// set) is deliberately *not* part of a checkpoint: it is cheap to
/// rebuild by replaying pushes, and the write-ahead log in `crowd-serve`
/// already stores it durably. A checkpoint captures only the state that
/// is *expensive* to recompute — the converged warm posteriors and
/// worker qualities — plus the bookkeeping counters that make the
/// restored engine indistinguishable from the original
/// ([`needs_converge`](StreamEngine::needs_converge) answers the same,
/// resumed converges follow the same EM trajectory bit for bit).
///
/// Install with [`StreamEngine::restore_checkpoint`] **after** replaying
/// the same `answers_seen` answers into a fresh engine; the restore
/// validates the count so a checkpoint can never be spliced onto the
/// wrong log prefix.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Answers the engine had absorbed when the checkpoint was taken.
    pub answers_seen: usize,
    /// The warm state (post-shrinkage, exactly as the next converge
    /// would resume from it). `None` before the first converge.
    pub warm: Option<WarmStart>,
    /// Converges run so far.
    pub converges: usize,
    /// Answers accepted since the last converge.
    pub pending_answers: usize,
    /// Whether the last converge met the convergence criterion.
    pub last_converged: bool,
}

/// The engine's scalar counters, extracted in one call (see
/// [`StreamEngine::summary`]) so a caller assembling a published
/// snapshot reads them from a single instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSummary {
    /// Answers accepted so far.
    pub answers_seen: usize,
    /// Answers accepted since the last warm converge.
    pub pending_answers: usize,
    /// Converges run so far.
    pub converges: usize,
    /// Delta compactions run so far.
    pub compactions: usize,
    /// Whether the next drain tick would re-converge this engine.
    pub needs_converge: bool,
}

/// What one converge produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The inference output over every answer seen so far.
    pub result: InferenceResult,
    /// Whether the run resumed from a warm state (false for the first
    /// converge and after [`StreamEngine::reset_warm`]).
    pub warm: bool,
    /// Answers incorporated in this converge.
    pub answers_seen: usize,
    /// Whether this converge triggered a delta compaction.
    pub compacted: bool,
}

/// Duplicate guard over `(task, worker)` pairs: a bitmap for universes
/// that fit in a few MB, a hash set (proportional to answers actually
/// seen, not to `n × m`) beyond — a million-task × hundred-thousand-
/// worker session must not allocate gigabytes up front for a sparse
/// stream.
#[derive(Debug)]
enum SeenSet {
    Dense(Vec<u64>),
    Sparse(std::collections::HashSet<u64>),
}

/// Universe size (in pairs) up to which the dense bitmap is used: 2²⁶
/// bits = 8 MB.
const DENSE_SEEN_LIMIT: usize = 1 << 26;

impl SeenSet {
    fn new(n: usize, m: usize) -> Self {
        match n.checked_mul(m) {
            Some(bits) if bits <= DENSE_SEEN_LIMIT => Self::Dense(vec![0u64; bits.div_ceil(64)]),
            _ => Self::Sparse(std::collections::HashSet::new()),
        }
    }

    /// Record the pair; `false` if it was already present.
    fn insert(&mut self, key: u64) -> bool {
        match self {
            Self::Dense(words) => {
                let (slot, mask) = ((key / 64) as usize, 1u64 << (key % 64));
                if words[slot] & mask != 0 {
                    false
                } else {
                    words[slot] |= mask;
                    true
                }
            }
            Self::Sparse(set) => set.insert(key),
        }
    }

    /// Un-record the pair (rollback when a later step of an insert
    /// rejects the answer).
    fn remove(&mut self, key: u64) {
        match self {
            Self::Dense(words) => {
                let (slot, mask) = ((key / 64) as usize, 1u64 << (key % 64));
                words[slot] &= !mask;
            }
            Self::Sparse(set) => {
                set.remove(&key);
            }
        }
    }
}

/// The incrementally maintained sharded view (`shard_count > 1` only):
/// `records[..synced]` of the engine's answer log are reflected in
/// `view`; a sync rebuilds exactly the shards whose task ranges appear
/// in the unsynced suffix (the warm-resume dirty-shard rule).
#[derive(Debug)]
struct ShardedState {
    view: ShardedView,
    synced: usize,
}

/// Incremental truth inference over a live answer stream.
///
/// Feed answers with [`push`](Self::push)/[`push_batch`](Self::push_batch)
/// (validated, `O(1)` amortised, served by the delta views between
/// converges via [`current_estimates`](Self::current_estimates)), then
/// call [`converge`](Self::converge) per batch: the engine compacts the
/// delta into the flat CSR view and re-converges the method **from the
/// previous converged state** (posteriors + worker quality), which takes
/// a small fraction of the cold iteration count once the stream has
/// warmed up (see `BENCH_stream.json`).
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    view: DeltaCat,
    sharded: Option<ShardedState>,
    /// Duplicate guard keyed by `task * m + worker`.
    seen: SeenSet,
    warm: Option<WarmStart>,
    converges: usize,
    compactions: usize,
    /// Answers accepted since the last warm converge — the drain hook a
    /// shard uses to skip clean sessions.
    pending_answers: usize,
    /// Whether the last (possibly budgeted) warm converge actually met
    /// the convergence criterion; a budget-exhausted session stays dirty
    /// even with no new answers.
    last_converged: bool,
}

impl StreamEngine {
    /// Start a session. Fails on numeric task types and on methods
    /// without a streaming path.
    pub fn new(config: StreamConfig) -> Result<Self, StreamError> {
        let Some(choices) = config.task_type.num_choices() else {
            return Err(StreamError::UnsupportedTaskType {
                task_type: config.task_type,
            });
        };
        if !matches!(
            config.method,
            Method::Ds | Method::Lfc | Method::Zc | Method::Glad | Method::Mv
        ) {
            return Err(StreamError::UnsupportedMethod {
                method: config.method.name(),
            });
        }
        let (n, m) = (config.num_tasks, config.num_workers);
        Ok(Self {
            view: DeltaCat::new(n, m, choices as usize),
            sharded: None,
            seen: SeenSet::new(n, m),
            warm: None,
            converges: 0,
            compactions: 0,
            pending_answers: 0,
            last_converged: true,
            config,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Answers accepted so far.
    pub fn answers_seen(&self) -> usize {
        self.view.num_answers()
    }

    /// Converges run so far.
    pub fn converges(&self) -> usize {
        self.converges
    }

    /// Delta compactions run so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Answers accepted since the last warm converge.
    pub fn pending_answers(&self) -> usize {
        self.pending_answers
    }

    /// Whether a drain tick should (re-)converge this session: true when
    /// answers arrived since the last warm converge, or when the last
    /// budgeted converge ran out of iterations before meeting the
    /// convergence criterion.
    pub fn needs_converge(&self) -> bool {
        self.pending_answers > 0 || !self.last_converged
    }

    /// All scalar counters in one read — the cheap extraction hook for
    /// snapshot publication (`crowd-serve`'s truth snapshots): `O(1)`,
    /// no CSR or delta state is cloned or compacted.
    pub fn summary(&self) -> EngineSummary {
        EngineSummary {
            answers_seen: self.answers_seen(),
            pending_answers: self.pending_answers,
            converges: self.converges,
            compactions: self.compactions,
            needs_converge: self.needs_converge(),
        }
    }

    /// Accept one answer. Rejects out-of-range indices, non-label
    /// answers, and duplicate `(task, worker)` pairs with typed errors;
    /// a rejected answer leaves the engine unchanged.
    pub fn push(&mut self, task: usize, worker: usize, answer: Answer) -> Result<(), StreamError> {
        let Some(label) = answer.label() else {
            return Err(StreamError::AnswerKindMismatch {
                detail: "numeric answer on a categorical stream".into(),
            });
        };
        // Validate ranges first (the seen-bit index needs them in range).
        if task >= self.config.num_tasks {
            return Err(StreamError::TaskOutOfRange {
                task,
                num_tasks: self.config.num_tasks,
            });
        }
        if worker >= self.config.num_workers {
            return Err(StreamError::WorkerOutOfRange {
                worker,
                num_workers: self.config.num_workers,
            });
        }
        if label as usize >= self.view.num_choices() {
            return Err(StreamError::LabelOutOfRange {
                label,
                num_choices: self.view.num_choices(),
            });
        }
        // Every validation has passed, so marking the pair seen and
        // pushing cannot leave the two structures out of step.
        let key = task as u64 * self.config.num_workers as u64 + worker as u64;
        if !self.seen.insert(key) {
            return Err(StreamError::DuplicateAnswer { task, worker });
        }
        if let Err(e) = self.view.push(task, worker, label) {
            // Unreachable after the validations above (the view checks the
            // same bounds), but if it ever fires the seen-bit must roll
            // back — a rejected answer leaves NO trace, which is what the
            // push_batch partial-apply contract promises.
            self.seen.remove(key);
            return Err(e);
        }
        self.pending_answers += 1;
        // Keep the amortised maintenance cost constant; converge()
        // compacts the rest.
        if self.view.maybe_compact() {
            self.compactions += 1;
        }
        Ok(())
    }

    /// Accept a batch of records (e.g. one
    /// [`crowd_data::StreamBatch`](crowd_data::assignment::StreamBatch)).
    /// Stops at the first invalid record, returning how many were
    /// accepted alongside the error.
    ///
    /// # Partial-apply contract
    ///
    /// On `Err((accepted, e))`, records `0..accepted` have been fully
    /// applied and `records[accepted]` (and everything after it) has
    /// left the engine **untouched**: each record is validated in full —
    /// ranges, answer kind, duplicate `(task, worker)` — before any
    /// engine structure is mutated, so the view, the seen-set, and the
    /// pending-answer counter always agree. The engine remains
    /// consistent and resumable: further pushes, converges, and reads
    /// behave exactly as if `records[..accepted]` had been pushed one by
    /// one, and replaying the same batch sequence into a fresh engine
    /// stops at the same record with the same error (the basis of
    /// deterministic WAL replay in `crowd-serve`). Note that re-pushing
    /// a half-applied batch into the *same* engine stops at record 0
    /// with a duplicate rejection — resubmission must slice off the
    /// accepted prefix.
    pub fn push_batch(&mut self, records: &[AnswerRecord]) -> Result<usize, (usize, StreamError)> {
        let timer = obs_push_seconds().start_timer();
        let mut accepted = 0usize;
        let out = (|| {
            for (i, r) in records.iter().enumerate() {
                self.push(r.task, r.worker, r.answer).map_err(|e| (i, e))?;
                accepted = i + 1;
            }
            Ok(records.len())
        })();
        let dt = timer.stop();
        obs_batches().inc();
        obs_batch_answers().add(accepted as u64);
        crowd_obs::journal::record(crowd_obs::SpanKind::BatchPush, accepted as u64, dt);
        out
    }

    /// Live per-task plurality estimates over everything pushed so far —
    /// `O(|V|)`, no EM, served straight from the delta views without
    /// compacting. The cheap read between converges.
    pub fn current_estimates(&self) -> Vec<Option<u8>> {
        let mut scratch = Vec::new();
        (0..self.config.num_tasks)
            .map(|t| self.view.plurality(t, &mut scratch))
            .collect()
    }

    /// Re-converge over every answer seen so far, resuming from the
    /// previous converge's state when one exists. Updates the warm state
    /// on success.
    pub fn converge(&mut self) -> Result<StreamReport, StreamError> {
        self.converge_budgeted(ConvergeBudget::default())
    }

    /// Re-converge under an iteration budget — the shard drain-tick path.
    ///
    /// Runs the method for at most `budget.max_iterations` outer
    /// iterations (never more than the session's own
    /// `options.max_iterations`). The warm state is updated from whatever
    /// state the loop reached, converged or not, so a budget-exhausted
    /// session **resumes where it left off** on the next call instead of
    /// redoing the work; until a call reports `result.converged`, the
    /// session keeps answering `true` from
    /// [`needs_converge`](Self::needs_converge).
    pub fn converge_budgeted(
        &mut self,
        budget: ConvergeBudget,
    ) -> Result<StreamReport, StreamError> {
        let cap = budget
            .max_iterations
            .max(1)
            .min(self.config.options.max_iterations);
        // Shrinkage guards against *overfitted* warm state being trusted
        // on new evidence; a pure budget-resume tick (no answers since
        // the last converge) must instead continue the EM trajectory
        // unperturbed, or repeated re-shrinking turns the resume loop
        // into a limit cycle that never meets the tolerance.
        let shrink = self.pending_answers > 0;
        let timer = obs_converge_seconds().start_timer();
        let report = self.run_capped(self.warm.clone(), cap)?;
        let dt = timer.stop();
        obs_converge_iterations().record(report.result.iterations as f64);
        if report.warm {
            obs_warm_resumes().inc();
        } else {
            obs_cold_converges().inc();
        }
        crowd_obs::journal::record(
            crowd_obs::SpanKind::Converge,
            report.result.iterations as u64,
            dt,
        );
        let mut warm = WarmStart::from_result(&report.result);
        if shrink {
            self.shrink_worker_state(&mut warm);
        }
        self.warm = Some(warm);
        self.converges += 1;
        self.pending_answers = 0;
        self.last_converged = report.result.converged;
        Ok(report)
    }

    /// Confidence-weight the warm worker state: a quality estimated from
    /// `c` answers is blended toward the cold default with weight
    /// `c / (c + WARM_SHRINKAGE_PSEUDOCOUNT)`.
    ///
    /// Early in a stream, per-worker estimates are fitted to a handful of
    /// answers; reloading them at face value can lock EM into the warm
    /// state's accidents (a worker mislabelled "adversarial" from four
    /// answers inverts that worker's future votes — observed flipping a
    /// decisively-answered task to the wrong basin on the warm-start
    /// fixture). Shrinkage keeps exactly as much of the warm state as
    /// the data supports; workers with no answers fall back to the cold
    /// default entirely.
    fn shrink_worker_state(&self, warm: &mut WarmStart) {
        const DEFAULT_ACC: f64 = 0.7;
        let l = self.view.num_choices();
        let off_default = (1.0 - DEFAULT_ACC) / (l - 1).max(1) as f64;
        for (w, quality) in warm.worker_quality.iter_mut().enumerate() {
            let count = self.view.worker_answer_count(w) as f64;
            if count == 0.0 {
                *quality = WorkerQuality::Unmodeled;
                continue;
            }
            let keep = count / (count + WARM_SHRINKAGE_PSEUDOCOUNT);
            match quality {
                WorkerQuality::Confusion(mat) => {
                    for (j, row) in mat.iter_mut().enumerate() {
                        for (k, cell) in row.iter_mut().enumerate() {
                            let default = if k == j { DEFAULT_ACC } else { off_default };
                            *cell = keep * *cell + (1.0 - keep) * default;
                        }
                    }
                }
                WorkerQuality::Probability(p) => {
                    *p = keep * *p + (1.0 - keep) * DEFAULT_ACC;
                }
                _ => {}
            }
        }
    }

    /// Converge *without* the warm state (a cold restart, as if this were
    /// the first batch). Does not update the warm state — this is the
    /// baseline the streaming benchmarks compare against.
    pub fn converge_cold(&mut self) -> Result<StreamReport, StreamError> {
        self.run_capped(None, self.config.options.max_iterations)
    }

    /// Drop the warm state (the next converge restarts cold).
    pub fn reset_warm(&mut self) {
        self.warm = None;
    }

    /// Export the warm-resumable state for durable snapshots (see
    /// [`EngineCheckpoint`] for what is and is not captured).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            answers_seen: self.view.num_answers(),
            warm: self.warm.clone(),
            converges: self.converges,
            pending_answers: self.pending_answers,
            last_converged: self.last_converged,
        }
    }

    /// Install a previously exported checkpoint onto an engine that has
    /// replayed the same answer-log prefix. After this call the engine's
    /// converge trajectory is bit-identical to the engine the checkpoint
    /// was taken from.
    ///
    /// Fails with [`StreamError::CheckpointMismatch`] when the engine's
    /// answer count differs from the checkpoint's — installing warm
    /// state onto a different log prefix would silently corrupt the
    /// session rather than resume it. The engine is left unchanged on
    /// error.
    pub fn restore_checkpoint(&mut self, cp: EngineCheckpoint) -> Result<(), StreamError> {
        if cp.answers_seen != self.view.num_answers() {
            return Err(StreamError::CheckpointMismatch {
                checkpoint_answers: cp.answers_seen,
                engine_answers: self.view.num_answers(),
            });
        }
        self.warm = cp.warm;
        self.converges = cp.converges;
        self.pending_answers = cp.pending_answers;
        self.last_converged = cp.last_converged;
        Ok(())
    }

    /// Compact the delta views now (converge does this lazily) — exposed
    /// so benchmarks can separate view maintenance from re-convergence
    /// cost.
    pub fn compact(&mut self) {
        if !self.view.is_compacted() {
            self.view.compact();
            self.compactions += 1;
        }
    }

    /// Bring the sharded view up to date with the answer log now
    /// (converge does this lazily). Returns the number of shard rebuilds
    /// performed: `0` for an unsharded session or a clean view, the full
    /// shard count on the first build, and exactly the number of
    /// **dirty** shards — ranges that received answers since the last
    /// sync — on a warm resume. Exposed so benchmarks and tests can
    /// separate shard maintenance from re-convergence cost.
    pub fn sync_shards(&mut self) -> usize {
        if self.config.shard_count <= 1 {
            return 0;
        }
        let records = self.view.records();
        match &mut self.sharded {
            None => {
                let view = ShardedView::from_records(
                    self.config.num_tasks,
                    self.config.num_workers,
                    self.view.num_choices(),
                    self.config.shard_count,
                    records.iter().copied(),
                    vec![None; self.config.num_tasks],
                );
                let rebuilt = view.num_shards();
                self.sharded = Some(ShardedState {
                    view,
                    synced: records.len(),
                });
                rebuilt
            }
            Some(state) => {
                if state.synced == records.len() {
                    return 0;
                }
                let mut dirty = vec![false; state.view.num_shards()];
                for &(task, _, _) in &records[state.synced..] {
                    dirty[state.view.shard_for_task(task as usize)] = true;
                }
                // A rebuild replaces a shard wholesale, so each dirty
                // shard needs its *full* record set: one pass over the
                // log buckets them (cheaper than rebuilding every shard,
                // which also pays the counting-sort and canonicalisation
                // work on clean ranges).
                let mut buckets: Vec<Vec<(u32, u32, u8)>> =
                    vec![Vec::new(); state.view.num_shards()];
                for &r in records {
                    let s = state.view.shard_for_task(r.0 as usize);
                    if dirty[s] {
                        buckets[s].push(r);
                    }
                }
                let mut rebuilt = 0usize;
                for (s, bucket) in buckets.into_iter().enumerate() {
                    if dirty[s] {
                        state.view.rebuild_shard(s, &bucket);
                        rebuilt += 1;
                    }
                }
                state.synced = records.len();
                rebuilt
            }
        }
    }

    fn run_capped(
        &mut self,
        warm: Option<WarmStart>,
        max_iterations: usize,
    ) -> Result<StreamReport, StreamError> {
        if self.view.num_answers() == 0 {
            return Err(StreamError::EmptyStream);
        }
        let compacted = !self.view.is_compacted();
        if compacted {
            self.view.compact();
            self.compactions += 1;
        }
        self.sync_shards();
        let was_warm = warm.is_some();
        let mut options = self.config.options.clone();
        options.golden = None;
        options.warm_start = warm;
        options.max_iterations = max_iterations;
        let result = if let Some(state) = &self.sharded {
            // The sharded EM paths; Mv has no native one and goes through
            // the flatten compatibility shim.
            match self.config.method {
                Method::Ds => Ds.infer_sharded(&state.view, &options)?,
                Method::Lfc => Lfc::default().infer_sharded(&state.view, &options)?,
                Method::Zc => Zc::default().infer_sharded(&state.view, &options)?,
                Method::Glad => Glad::default().infer_sharded(&state.view, &options)?,
                Method::Mv => Mv.infer_view(&state.view.flatten(), &options)?,
                _ => unreachable!("rejected in StreamEngine::new"),
            }
        } else {
            let cat = self.view.as_cat();
            match self.config.method {
                Method::Ds => Ds.infer_view(cat, &options)?,
                Method::Lfc => Lfc::default().infer_view(cat, &options)?,
                Method::Zc => Zc::default().infer_view(cat, &options)?,
                Method::Glad => Glad::default().infer_view(cat, &options)?,
                Method::Mv => Mv.infer_view(cat, &options)?,
                _ => unreachable!("rejected in StreamEngine::new"),
            }
        };
        Ok(StreamReport {
            answers_seen: self.view.num_answers(),
            warm: was_warm,
            compacted,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::datasets::PaperDataset;
    use crowd_data::StreamSession;

    fn decision_config(method: Method, n: usize, m: usize) -> StreamConfig {
        StreamConfig::new(method, TaskType::DecisionMaking, n, m)
    }

    #[test]
    fn rejects_numeric_and_unsupported_methods() {
        let numeric = StreamConfig::new(Method::Ds, TaskType::Numeric, 10, 5);
        assert!(matches!(
            StreamEngine::new(numeric),
            Err(StreamError::UnsupportedTaskType { .. })
        ));
        let bcc = decision_config(Method::Bcc, 10, 5);
        assert!(matches!(
            StreamEngine::new(bcc),
            Err(StreamError::UnsupportedMethod { .. })
        ));
    }

    #[test]
    fn push_validates_and_rejects_duplicates() {
        let mut e = StreamEngine::new(decision_config(Method::Mv, 4, 3)).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        assert!(matches!(
            e.push(0, 0, Answer::Label(0)),
            Err(StreamError::DuplicateAnswer { task: 0, worker: 0 })
        ));
        assert!(matches!(
            e.push(0, 1, Answer::Numeric(0.5)),
            Err(StreamError::AnswerKindMismatch { .. })
        ));
        assert!(matches!(
            e.push(9, 0, Answer::Label(0)),
            Err(StreamError::TaskOutOfRange { .. })
        ));
        assert_eq!(e.answers_seen(), 1);
    }

    #[test]
    fn push_batch_partial_apply_contract() {
        // The contract crowd-serve's WAL replay rests on: a rejected
        // batch applies exactly its valid prefix, the offending record
        // and everything after it leave no trace, the engine stays
        // resumable, and a fresh engine rejects identically.
        use crowd_data::AnswerRecord;
        let rec = |task: usize, worker: usize, label: u8| AnswerRecord {
            task,
            worker,
            answer: Answer::Label(label),
        };
        let numeric = |task: usize, worker: usize| AnswerRecord {
            task,
            worker,
            answer: Answer::Numeric(0.5),
        };
        let cases: Vec<(&str, Vec<AnswerRecord>, usize)> = vec![
            (
                "task out of range",
                vec![rec(0, 0, 1), rec(1, 0, 0), rec(9, 1, 1), rec(2, 1, 0)],
                2,
            ),
            (
                "worker out of range",
                vec![rec(0, 0, 1), rec(1, 8, 0), rec(2, 1, 0)],
                1,
            ),
            (
                "label out of range",
                vec![rec(0, 0, 1), rec(1, 0, 9), rec(2, 1, 0)],
                1,
            ),
            (
                "duplicate within the batch",
                vec![rec(0, 0, 1), rec(1, 0, 0), rec(0, 0, 0), rec(2, 1, 0)],
                2,
            ),
            (
                "answer kind mismatch",
                vec![rec(0, 0, 1), numeric(1, 0), rec(2, 1, 0)],
                1,
            ),
        ];
        for (name, batch, expected_accepted) in cases {
            let mut engine = StreamEngine::new(decision_config(Method::Ds, 4, 3)).unwrap();
            let (accepted, err) = engine.push_batch(&batch).unwrap_err();
            assert_eq!(accepted, expected_accepted, "{name}");
            // Only the valid prefix entered the engine.
            assert_eq!(engine.answers_seen(), accepted, "{name}");
            assert_eq!(engine.pending_answers(), accepted, "{name}");
            // A fresh engine stops at the same record with the same error
            // (the determinism WAL replay relies on).
            let mut fresh = StreamEngine::new(decision_config(Method::Ds, 4, 3)).unwrap();
            let (accepted2, err2) = fresh.push_batch(&batch).unwrap_err();
            assert_eq!(accepted2, accepted, "{name}");
            assert_eq!(err2.to_string(), err.to_string(), "{name}");
            // The rejected suffix left no trace: the offending record's
            // slot is still free (a duplicate would now be rejected only
            // if the prefix claimed it), and the engine is resumable —
            // pushing the remaining valid records and converging matches
            // an engine fed the valid records directly.
            let valid: Vec<AnswerRecord> = {
                let mut seen = std::collections::HashSet::new();
                batch
                    .iter()
                    .filter(|r| {
                        r.task < 4
                            && r.worker < 3
                            && r.answer.label().is_some_and(|l| l < 2)
                            && seen.insert((r.task, r.worker))
                    })
                    .cloned()
                    .collect()
            };
            engine
                .push_batch(&valid[accepted..])
                .unwrap_or_else(|(_, e)| {
                    panic!("{name}: engine not resumable after rejection: {e}")
                });
            let resumed = engine.converge().unwrap();
            let mut reference = StreamEngine::new(decision_config(Method::Ds, 4, 3)).unwrap();
            reference.push_batch(&valid).unwrap();
            let direct = reference.converge().unwrap();
            assert_eq!(resumed.result.truths, direct.result.truths, "{name}");
            assert_eq!(
                resumed.result.posteriors, direct.result.posteriors,
                "{name}"
            );
        }
    }

    #[test]
    fn view_path_rejects_mis_sized_qualification_vector() {
        use crowd_core::QualityInit;
        let mut cfg = decision_config(Method::Zc, 4, 5);
        cfg.options.quality_init = QualityInit::Qualification(vec![Some(0.9); 2]);
        let mut e = StreamEngine::new(cfg).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        // Typed error, not an index panic (the batch path rejects the
        // same input via validate_common).
        assert!(matches!(
            e.converge(),
            Err(StreamError::Inference(
                crowd_core::InferenceError::BadOptions { .. }
            ))
        ));
    }

    #[test]
    fn converge_on_empty_stream_is_typed() {
        let mut e = StreamEngine::new(decision_config(Method::Ds, 4, 3)).unwrap();
        assert!(matches!(e.converge(), Err(StreamError::EmptyStream)));
    }

    #[test]
    fn current_estimates_track_pushes_live() {
        let mut e = StreamEngine::new(decision_config(Method::Mv, 3, 3)).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        e.push(0, 1, Answer::Label(1)).unwrap();
        e.push(1, 0, Answer::Label(0)).unwrap();
        assert_eq!(e.current_estimates(), vec![Some(1), Some(0), None]);
    }

    #[test]
    fn warm_converges_use_fewer_iterations_over_a_replayed_stream() {
        let d = PaperDataset::DProduct.generate(0.08, 11);
        let mut engine =
            StreamEngine::new(decision_config(Method::Ds, d.num_tasks(), d.num_workers())).unwrap();
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        let mut batches = 0usize;
        for batch in StreamSession::from_dataset(&d, d.num_answers().div_ceil(6)) {
            engine.push_batch(&batch.records).expect("valid replay");
            let cold = engine.converge_cold().unwrap();
            let warm = engine.converge().unwrap();
            assert_eq!(warm.answers_seen, cold.answers_seen);
            warm_total += warm.result.iterations;
            cold_total += cold.result.iterations;
            batches += 1;
        }
        assert_eq!(batches, 6);
        assert!(
            warm_total < cold_total,
            "warm {warm_total} vs cold {cold_total} total iterations"
        );
        assert_eq!(engine.answers_seen(), d.num_answers());
    }

    #[test]
    fn streamed_result_matches_batch_inference_at_the_end() {
        // After the last batch, a *cold* converge over the full stream
        // must agree exactly with batch inference on the equivalent
        // dataset — the stream view is the same answer log.
        let d = PaperDataset::DPosSent.generate(0.1, 5);
        let mut engine =
            StreamEngine::new(decision_config(Method::Ds, d.num_tasks(), d.num_workers())).unwrap();
        for batch in StreamSession::from_dataset(&d, 500) {
            engine.push_batch(&batch.records).expect("valid replay");
        }
        let streamed = engine.converge_cold().unwrap();
        use crowd_core::TruthInference;
        let batch = Ds.infer(&d, &InferenceOptions::default()).unwrap();
        assert_eq!(streamed.result.truths, batch.truths);
        assert_eq!(streamed.result.iterations, batch.iterations);
    }

    #[test]
    fn budgeted_converge_resumes_to_the_full_converge_fixed_point() {
        let d = PaperDataset::DProduct.generate(0.08, 13);
        let cfg = decision_config(Method::Ds, d.num_tasks(), d.num_workers());
        let mut budgeted = StreamEngine::new(cfg.clone()).unwrap();
        let mut full = StreamEngine::new(cfg).unwrap();
        for r in d.records() {
            budgeted.push(r.task, r.worker, r.answer).unwrap();
            full.push(r.task, r.worker, r.answer).unwrap();
        }
        assert!(budgeted.needs_converge());

        // Drive the budgeted engine in 3-iteration slices until it
        // reports convergence; it must remain dirty in between.
        let mut ticks = 0usize;
        let mut total_iters = 0usize;
        loop {
            let report = budgeted
                .converge_budgeted(ConvergeBudget::iterations(3))
                .unwrap();
            ticks += 1;
            total_iters += report.result.iterations;
            assert!(report.result.iterations <= 3);
            if report.result.converged {
                break;
            }
            assert!(
                budgeted.needs_converge(),
                "budget-exhausted session must stay dirty with no new answers"
            );
            assert!(ticks < 200, "budgeted converge never finished");
        }
        assert!(!budgeted.needs_converge());
        assert!(ticks > 1, "budget of 3 should not finish in one tick");

        // The unbudgeted engine reaches a fixed point in one call; the
        // sliced path must land on the same labels.
        let reference = full.converge().unwrap();
        let sliced = budgeted.converge().unwrap();
        assert_eq!(sliced.result.truths, reference.result.truths);
        let _ = total_iters;
    }

    #[test]
    fn pending_answers_track_pushes_and_converges() {
        let mut e = StreamEngine::new(decision_config(Method::Mv, 4, 3)).unwrap();
        assert_eq!(e.pending_answers(), 0);
        assert!(!e.needs_converge());
        e.push(0, 0, Answer::Label(1)).unwrap();
        e.push(1, 0, Answer::Label(0)).unwrap();
        assert_eq!(e.pending_answers(), 2);
        assert!(e.needs_converge());
        e.converge().unwrap();
        assert_eq!(e.pending_answers(), 0);
        assert!(!e.needs_converge());
        // converge_cold is a baseline probe, not a drain: it must not
        // mark pending answers as absorbed.
        e.push(2, 1, Answer::Label(1)).unwrap();
        e.converge_cold().unwrap();
        assert_eq!(e.pending_answers(), 1);
        assert!(e.needs_converge());
    }

    #[test]
    fn push_batch_partial_failure_leaves_engine_consistent_and_resumable() {
        // The documented partial-apply contract: on Err((accepted, e)),
        // records[..accepted] are in, records[accepted..] left no trace,
        // and the engine behaves exactly like one that was only ever fed
        // the accepted prefix (plus whatever is pushed afterwards).
        let d = PaperDataset::DProduct.generate(0.05, 3);
        let cfg = decision_config(Method::Ds, d.num_tasks(), d.num_workers());
        let records = d.records();
        let split = records.len() / 2;

        let mut batch: Vec<AnswerRecord> = records[..split].to_vec();
        // Invalid mid-batch record (task out of range) followed by valid
        // ones that must NOT be applied.
        batch.push(AnswerRecord {
            task: d.num_tasks() + 7,
            worker: 0,
            answer: Answer::Label(0),
        });
        batch.extend(records[split..].iter().cloned());

        let mut broken = StreamEngine::new(cfg.clone()).unwrap();
        let (accepted, err) = broken.push_batch(&batch).unwrap_err();
        assert_eq!(accepted, split);
        assert!(matches!(err, StreamError::TaskOutOfRange { .. }));
        assert_eq!(broken.answers_seen(), split);
        assert_eq!(broken.pending_answers(), split);
        // Re-pushing the same batch fails at the same record, now as a
        // duplicate of the applied prefix's first record — determinism
        // the WAL replay path relies on (same bytes, same outcome).
        let (re_accepted, _) = broken.push_batch(&batch).unwrap_err();
        assert_eq!(re_accepted, 0);
        assert_eq!(broken.answers_seen(), split);

        // Resume: push the valid remainder, converge, and compare to an
        // engine that never saw the invalid record.
        broken.push_batch(&records[split..]).unwrap();
        let mut clean = StreamEngine::new(cfg).unwrap();
        clean.push_batch(records).unwrap();
        let b = broken.converge().unwrap();
        let c = clean.converge().unwrap();
        assert_eq!(b.result.truths, c.result.truths);
        assert_eq!(
            posterior_bits(&b.result.posteriors),
            posterior_bits(&c.result.posteriors)
        );
    }

    fn posterior_bits(p: &Option<Vec<Vec<f64>>>) -> Vec<Vec<u64>> {
        p.as_ref()
            .map(|rows| {
                rows.iter()
                    .map(|r| r.iter().map(|x| x.to_bits()).collect())
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Run a stream halfway, checkpoint, rebuild a fresh engine from
        // the same answer prefix + checkpoint, then continue both: every
        // subsequent converge must be bit-identical.
        let d = PaperDataset::DProduct.generate(0.06, 21);
        let cfg = decision_config(Method::Ds, d.num_tasks(), d.num_workers());
        let records = d.records();
        let split = records.len() / 2;

        let mut original = StreamEngine::new(cfg.clone()).unwrap();
        original.push_batch(&records[..split]).unwrap();
        original
            .converge_budgeted(ConvergeBudget::iterations(4))
            .unwrap();
        let cp = original.checkpoint();
        assert_eq!(cp.answers_seen, split);
        assert_eq!(cp.converges, 1);

        let mut restored = StreamEngine::new(cfg).unwrap();
        // Wrong prefix → typed error, engine untouched.
        assert!(matches!(
            restored.restore_checkpoint(cp.clone()),
            Err(StreamError::CheckpointMismatch { .. })
        ));
        restored.push_batch(&records[..split]).unwrap();
        restored.restore_checkpoint(cp).unwrap();
        assert_eq!(restored.converges(), original.converges());
        assert_eq!(restored.pending_answers(), original.pending_answers());
        assert_eq!(restored.needs_converge(), original.needs_converge());

        // Continue both through the same schedule.
        original.push_batch(&records[split..]).unwrap();
        restored.push_batch(&records[split..]).unwrap();
        loop {
            let a = original
                .converge_budgeted(ConvergeBudget::iterations(3))
                .unwrap();
            let b = restored
                .converge_budgeted(ConvergeBudget::iterations(3))
                .unwrap();
            assert_eq!(a.result.truths, b.result.truths);
            assert_eq!(a.result.iterations, b.result.iterations);
            assert_eq!(
                posterior_bits(&a.result.posteriors),
                posterior_bits(&b.result.posteriors)
            );
            assert_eq!(a.result.converged, b.result.converged);
            if a.result.converged {
                break;
            }
        }
    }

    /// The dataset's records grouped by task — the arrival shape under
    /// which the sharded converge is bit-identical to the legacy flat
    /// path (see `crowd_core::views::sharded` for why task-grouped
    /// arrival is the flat-equality condition).
    fn task_grouped_records(d: &crowd_data::Dataset) -> Vec<AnswerRecord> {
        let mut records = d.records().to_vec();
        records.sort_by_key(|r| r.task);
        records
    }

    #[test]
    fn sharded_streaming_matches_legacy_on_task_grouped_streams() {
        for method in [Method::Ds, Method::Zc, Method::Glad, Method::Mv] {
            let d = PaperDataset::DProduct.generate(0.06, 31);
            let cfg = decision_config(method, d.num_tasks(), d.num_workers());
            let mut legacy = StreamEngine::new(cfg.clone()).unwrap();
            let mut sharded = StreamEngine::new(cfg.with_shards(5)).unwrap();
            let records = task_grouped_records(&d);
            for chunk in records.chunks(records.len().div_ceil(3)) {
                legacy.push_batch(chunk).unwrap();
                sharded.push_batch(chunk).unwrap();
                let a = legacy.converge().unwrap();
                let b = sharded.converge().unwrap();
                assert_eq!(a.result.truths, b.result.truths, "{method:?}");
                assert_eq!(
                    posterior_bits(&a.result.posteriors),
                    posterior_bits(&b.result.posteriors),
                    "{method:?}"
                );
                assert_eq!(a.result.iterations, b.result.iterations, "{method:?}");
            }
        }
    }

    #[test]
    fn sharded_converges_agree_across_shard_counts_on_any_arrival_order() {
        // Arbitrary (non-task-grouped) arrival: the shard-count-
        // invariance guarantee is unconditional even where flat equality
        // is not, because every sharded run folds worker answers in the
        // same canonical task-ascending order.
        let d = PaperDataset::DProduct.generate(0.06, 43);
        let cfg = decision_config(Method::Ds, d.num_tasks(), d.num_workers());
        let mut engines: Vec<StreamEngine> = [2usize, 7, 16]
            .iter()
            .map(|&s| StreamEngine::new(cfg.clone().with_shards(s)).unwrap())
            .collect();
        let records = d.records();
        for chunk in records.chunks(records.len().div_ceil(4)) {
            let mut reports = Vec::new();
            for e in &mut engines {
                e.push_batch(chunk).unwrap();
                reports.push(e.converge().unwrap());
            }
            for r in &reports[1..] {
                assert_eq!(reports[0].result.truths, r.result.truths);
                assert_eq!(
                    posterior_bits(&reports[0].result.posteriors),
                    posterior_bits(&r.result.posteriors)
                );
                assert_eq!(reports[0].result.iterations, r.result.iterations);
            }
        }
    }

    #[test]
    fn warm_resume_rebuilds_only_dirty_shards() {
        let d = PaperDataset::DProduct.generate(0.06, 7);
        let cfg = decision_config(Method::Ds, d.num_tasks(), d.num_workers()).with_shards(8);
        let mut e = StreamEngine::new(cfg).unwrap();
        let records = task_grouped_records(&d);
        e.push_batch(&records[..records.len() - 4]).unwrap();
        // First converge builds every shard.
        assert_eq!(e.sync_shards(), 8);
        e.converge().unwrap();
        assert_eq!(e.sync_shards(), 0, "clean view needs no rebuilds");

        // A tail batch touches only the task ranges it lands in: the
        // task-grouped suffix holds at most 4 distinct (adjacent) tasks,
        // which span at most 2 of the 8 shard ranges.
        e.push_batch(&records[records.len() - 4..]).unwrap();
        let rebuilt = e.sync_shards();
        assert!(
            (1..=2).contains(&rebuilt),
            "expected a small dirty set, rebuilt {rebuilt} of 8 shards"
        );

        // And the resumed converge matches an engine fed everything in
        // one go (same warm trajectory: replay the same schedule).
        let mut reference = StreamEngine::new(
            decision_config(Method::Ds, d.num_tasks(), d.num_workers()).with_shards(8),
        )
        .unwrap();
        reference.push_batch(&records[..records.len() - 4]).unwrap();
        reference.converge().unwrap();
        reference.push_batch(&records[records.len() - 4..]).unwrap();
        let a = e.converge().unwrap();
        let b = reference.converge().unwrap();
        assert_eq!(a.result.truths, b.result.truths);
        assert_eq!(
            posterior_bits(&a.result.posteriors),
            posterior_bits(&b.result.posteriors)
        );
    }

    #[test]
    fn mv_streams_without_warm_state() {
        let d = PaperDataset::DPosSent.generate(0.05, 9);
        let mut engine =
            StreamEngine::new(decision_config(Method::Mv, d.num_tasks(), d.num_workers())).unwrap();
        for batch in StreamSession::from_dataset(&d, 200) {
            engine.push_batch(&batch.records).expect("valid replay");
            let r = engine.converge().unwrap();
            assert_eq!(r.result.iterations, 1);
            assert!(r.result.converged);
        }
    }
}
