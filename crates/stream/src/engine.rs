//! The streaming inference engine: answer deltas in, warm re-converged
//! truth estimates out.

use crowd_core::methods::{Ds, Glad, Lfc, Mv, Zc};
use crowd_core::{InferenceOptions, InferenceResult, Method, WarmStart, WorkerQuality};
use crowd_data::{Answer, AnswerRecord, TaskType};

use crate::delta::DeltaCat;
use crate::StreamError;

/// Pseudo-count governing how fast warm worker state earns full trust:
/// a worker's warm quality keeps weight `c / (c + 12)` after `c`
/// answers (half trust at 12 answers, ~90% at 100).
pub const WARM_SHRINKAGE_PSEUDOCOUNT: f64 = 12.0;

/// Configuration of a streaming session: a fixed task/worker universe, a
/// method, and the inference options every converge reuses.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The inference method re-converged per batch. Supported: the
    /// EM-family categorical methods with warm starts (`Ds`, `Lfc`,
    /// `Zc`, `Glad`) plus `Mv` (recomputed directly from the view).
    pub method: Method,
    /// The task type (must be categorical).
    pub task_type: TaskType,
    /// Number of tasks `n` (fixed for the session).
    pub num_tasks: usize,
    /// Number of workers `m` (fixed for the session).
    pub num_workers: usize,
    /// Options forwarded to every converge (`warm_start` is managed by
    /// the engine and overwritten; `golden` is not supported and
    /// ignored).
    pub options: InferenceOptions,
}

impl StreamConfig {
    /// A config with default options.
    pub fn new(method: Method, task_type: TaskType, num_tasks: usize, num_workers: usize) -> Self {
        Self {
            method,
            task_type,
            num_tasks,
            num_workers,
            options: InferenceOptions::default(),
        }
    }
}

/// What one converge produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The inference output over every answer seen so far.
    pub result: InferenceResult,
    /// Whether the run resumed from a warm state (false for the first
    /// converge and after [`StreamEngine::reset_warm`]).
    pub warm: bool,
    /// Answers incorporated in this converge.
    pub answers_seen: usize,
    /// Whether this converge triggered a delta compaction.
    pub compacted: bool,
}

/// Duplicate guard over `(task, worker)` pairs: a bitmap for universes
/// that fit in a few MB, a hash set (proportional to answers actually
/// seen, not to `n × m`) beyond — a million-task × hundred-thousand-
/// worker session must not allocate gigabytes up front for a sparse
/// stream.
#[derive(Debug)]
enum SeenSet {
    Dense(Vec<u64>),
    Sparse(std::collections::HashSet<u64>),
}

/// Universe size (in pairs) up to which the dense bitmap is used: 2²⁶
/// bits = 8 MB.
const DENSE_SEEN_LIMIT: usize = 1 << 26;

impl SeenSet {
    fn new(n: usize, m: usize) -> Self {
        match n.checked_mul(m) {
            Some(bits) if bits <= DENSE_SEEN_LIMIT => Self::Dense(vec![0u64; bits.div_ceil(64)]),
            _ => Self::Sparse(std::collections::HashSet::new()),
        }
    }

    /// Record the pair; `false` if it was already present.
    fn insert(&mut self, key: u64) -> bool {
        match self {
            Self::Dense(words) => {
                let (slot, mask) = ((key / 64) as usize, 1u64 << (key % 64));
                if words[slot] & mask != 0 {
                    false
                } else {
                    words[slot] |= mask;
                    true
                }
            }
            Self::Sparse(set) => set.insert(key),
        }
    }
}

/// Incremental truth inference over a live answer stream.
///
/// Feed answers with [`push`](Self::push)/[`push_batch`](Self::push_batch)
/// (validated, `O(1)` amortised, served by the delta views between
/// converges via [`current_estimates`](Self::current_estimates)), then
/// call [`converge`](Self::converge) per batch: the engine compacts the
/// delta into the flat CSR view and re-converges the method **from the
/// previous converged state** (posteriors + worker quality), which takes
/// a small fraction of the cold iteration count once the stream has
/// warmed up (see `BENCH_stream.json`).
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    view: DeltaCat,
    /// Duplicate guard keyed by `task * m + worker`.
    seen: SeenSet,
    warm: Option<WarmStart>,
    converges: usize,
    compactions: usize,
}

impl StreamEngine {
    /// Start a session. Fails on numeric task types and on methods
    /// without a streaming path.
    pub fn new(config: StreamConfig) -> Result<Self, StreamError> {
        let Some(choices) = config.task_type.num_choices() else {
            return Err(StreamError::UnsupportedTaskType {
                task_type: config.task_type,
            });
        };
        if !matches!(
            config.method,
            Method::Ds | Method::Lfc | Method::Zc | Method::Glad | Method::Mv
        ) {
            return Err(StreamError::UnsupportedMethod {
                method: config.method.name(),
            });
        }
        let (n, m) = (config.num_tasks, config.num_workers);
        Ok(Self {
            view: DeltaCat::new(n, m, choices as usize),
            seen: SeenSet::new(n, m),
            warm: None,
            converges: 0,
            compactions: 0,
            config,
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Answers accepted so far.
    pub fn answers_seen(&self) -> usize {
        self.view.num_answers()
    }

    /// Converges run so far.
    pub fn converges(&self) -> usize {
        self.converges
    }

    /// Delta compactions run so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Accept one answer. Rejects out-of-range indices, non-label
    /// answers, and duplicate `(task, worker)` pairs with typed errors;
    /// a rejected answer leaves the engine unchanged.
    pub fn push(&mut self, task: usize, worker: usize, answer: Answer) -> Result<(), StreamError> {
        let Some(label) = answer.label() else {
            return Err(StreamError::AnswerKindMismatch {
                detail: "numeric answer on a categorical stream".into(),
            });
        };
        // Validate ranges first (the seen-bit index needs them in range).
        if task >= self.config.num_tasks {
            return Err(StreamError::TaskOutOfRange {
                task,
                num_tasks: self.config.num_tasks,
            });
        }
        if worker >= self.config.num_workers {
            return Err(StreamError::WorkerOutOfRange {
                worker,
                num_workers: self.config.num_workers,
            });
        }
        if label as usize >= self.view.num_choices() {
            return Err(StreamError::LabelOutOfRange {
                label,
                num_choices: self.view.num_choices(),
            });
        }
        // Every validation has passed, so marking the pair seen and
        // pushing cannot leave the two structures out of step.
        let key = task as u64 * self.config.num_workers as u64 + worker as u64;
        if !self.seen.insert(key) {
            return Err(StreamError::DuplicateAnswer { task, worker });
        }
        self.view.push(task, worker, label)?;
        // Keep the amortised maintenance cost constant; converge()
        // compacts the rest.
        if self.view.maybe_compact() {
            self.compactions += 1;
        }
        Ok(())
    }

    /// Accept a batch of records (e.g. one
    /// [`crowd_data::StreamBatch`](crowd_data::assignment::StreamBatch)).
    /// Stops at the first invalid record, returning how many were
    /// accepted alongside the error.
    pub fn push_batch(&mut self, records: &[AnswerRecord]) -> Result<usize, (usize, StreamError)> {
        for (i, r) in records.iter().enumerate() {
            self.push(r.task, r.worker, r.answer).map_err(|e| (i, e))?;
        }
        Ok(records.len())
    }

    /// Live per-task plurality estimates over everything pushed so far —
    /// `O(|V|)`, no EM, served straight from the delta views without
    /// compacting. The cheap read between converges.
    pub fn current_estimates(&self) -> Vec<Option<u8>> {
        let mut scratch = Vec::new();
        (0..self.config.num_tasks)
            .map(|t| self.view.plurality(t, &mut scratch))
            .collect()
    }

    /// Re-converge over every answer seen so far, resuming from the
    /// previous converge's state when one exists. Updates the warm state
    /// on success.
    pub fn converge(&mut self) -> Result<StreamReport, StreamError> {
        let report = self.run(self.warm.clone())?;
        let mut warm = WarmStart::from_result(&report.result);
        self.shrink_worker_state(&mut warm);
        self.warm = Some(warm);
        self.converges += 1;
        Ok(report)
    }

    /// Confidence-weight the warm worker state: a quality estimated from
    /// `c` answers is blended toward the cold default with weight
    /// `c / (c + WARM_SHRINKAGE_PSEUDOCOUNT)`.
    ///
    /// Early in a stream, per-worker estimates are fitted to a handful of
    /// answers; reloading them at face value can lock EM into the warm
    /// state's accidents (a worker mislabelled "adversarial" from four
    /// answers inverts that worker's future votes — observed flipping a
    /// decisively-answered task to the wrong basin on the warm-start
    /// fixture). Shrinkage keeps exactly as much of the warm state as
    /// the data supports; workers with no answers fall back to the cold
    /// default entirely.
    fn shrink_worker_state(&self, warm: &mut WarmStart) {
        const DEFAULT_ACC: f64 = 0.7;
        let l = self.view.num_choices();
        let off_default = (1.0 - DEFAULT_ACC) / (l - 1).max(1) as f64;
        for (w, quality) in warm.worker_quality.iter_mut().enumerate() {
            let count = self.view.worker_answer_count(w) as f64;
            if count == 0.0 {
                *quality = WorkerQuality::Unmodeled;
                continue;
            }
            let keep = count / (count + WARM_SHRINKAGE_PSEUDOCOUNT);
            match quality {
                WorkerQuality::Confusion(mat) => {
                    for (j, row) in mat.iter_mut().enumerate() {
                        for (k, cell) in row.iter_mut().enumerate() {
                            let default = if k == j { DEFAULT_ACC } else { off_default };
                            *cell = keep * *cell + (1.0 - keep) * default;
                        }
                    }
                }
                WorkerQuality::Probability(p) => {
                    *p = keep * *p + (1.0 - keep) * DEFAULT_ACC;
                }
                _ => {}
            }
        }
    }

    /// Converge *without* the warm state (a cold restart, as if this were
    /// the first batch). Does not update the warm state — this is the
    /// baseline the streaming benchmarks compare against.
    pub fn converge_cold(&mut self) -> Result<StreamReport, StreamError> {
        self.run(None)
    }

    /// Drop the warm state (the next converge restarts cold).
    pub fn reset_warm(&mut self) {
        self.warm = None;
    }

    /// Compact the delta views now (converge does this lazily) — exposed
    /// so benchmarks can separate view maintenance from re-convergence
    /// cost.
    pub fn compact(&mut self) {
        if !self.view.is_compacted() {
            self.view.compact();
            self.compactions += 1;
        }
    }

    fn run(&mut self, warm: Option<WarmStart>) -> Result<StreamReport, StreamError> {
        if self.view.num_answers() == 0 {
            return Err(StreamError::EmptyStream);
        }
        let compacted = !self.view.is_compacted();
        if compacted {
            self.view.compact();
            self.compactions += 1;
        }
        let cat = self.view.as_cat();
        let was_warm = warm.is_some();
        let mut options = self.config.options.clone();
        options.golden = None;
        options.warm_start = warm;
        let result = match self.config.method {
            Method::Ds => Ds.infer_view(cat, &options)?,
            Method::Lfc => Lfc::default().infer_view(cat, &options)?,
            Method::Zc => Zc::default().infer_view(cat, &options)?,
            Method::Glad => Glad::default().infer_view(cat, &options)?,
            Method::Mv => Mv.infer_view(cat, &options)?,
            _ => unreachable!("rejected in StreamEngine::new"),
        };
        Ok(StreamReport {
            answers_seen: self.view.num_answers(),
            warm: was_warm,
            compacted,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::datasets::PaperDataset;
    use crowd_data::StreamSession;

    fn decision_config(method: Method, n: usize, m: usize) -> StreamConfig {
        StreamConfig::new(method, TaskType::DecisionMaking, n, m)
    }

    #[test]
    fn rejects_numeric_and_unsupported_methods() {
        let numeric = StreamConfig::new(Method::Ds, TaskType::Numeric, 10, 5);
        assert!(matches!(
            StreamEngine::new(numeric),
            Err(StreamError::UnsupportedTaskType { .. })
        ));
        let bcc = decision_config(Method::Bcc, 10, 5);
        assert!(matches!(
            StreamEngine::new(bcc),
            Err(StreamError::UnsupportedMethod { .. })
        ));
    }

    #[test]
    fn push_validates_and_rejects_duplicates() {
        let mut e = StreamEngine::new(decision_config(Method::Mv, 4, 3)).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        assert!(matches!(
            e.push(0, 0, Answer::Label(0)),
            Err(StreamError::DuplicateAnswer { task: 0, worker: 0 })
        ));
        assert!(matches!(
            e.push(0, 1, Answer::Numeric(0.5)),
            Err(StreamError::AnswerKindMismatch { .. })
        ));
        assert!(matches!(
            e.push(9, 0, Answer::Label(0)),
            Err(StreamError::TaskOutOfRange { .. })
        ));
        assert_eq!(e.answers_seen(), 1);
    }

    #[test]
    fn view_path_rejects_mis_sized_qualification_vector() {
        use crowd_core::QualityInit;
        let mut cfg = decision_config(Method::Zc, 4, 5);
        cfg.options.quality_init = QualityInit::Qualification(vec![Some(0.9); 2]);
        let mut e = StreamEngine::new(cfg).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        // Typed error, not an index panic (the batch path rejects the
        // same input via validate_common).
        assert!(matches!(
            e.converge(),
            Err(StreamError::Inference(
                crowd_core::InferenceError::BadOptions { .. }
            ))
        ));
    }

    #[test]
    fn converge_on_empty_stream_is_typed() {
        let mut e = StreamEngine::new(decision_config(Method::Ds, 4, 3)).unwrap();
        assert!(matches!(e.converge(), Err(StreamError::EmptyStream)));
    }

    #[test]
    fn current_estimates_track_pushes_live() {
        let mut e = StreamEngine::new(decision_config(Method::Mv, 3, 3)).unwrap();
        e.push(0, 0, Answer::Label(1)).unwrap();
        e.push(0, 1, Answer::Label(1)).unwrap();
        e.push(1, 0, Answer::Label(0)).unwrap();
        assert_eq!(e.current_estimates(), vec![Some(1), Some(0), None]);
    }

    #[test]
    fn warm_converges_use_fewer_iterations_over_a_replayed_stream() {
        let d = PaperDataset::DProduct.generate(0.08, 11);
        let mut engine =
            StreamEngine::new(decision_config(Method::Ds, d.num_tasks(), d.num_workers())).unwrap();
        let mut warm_total = 0usize;
        let mut cold_total = 0usize;
        let mut batches = 0usize;
        for batch in StreamSession::from_dataset(&d, d.num_answers().div_ceil(6)) {
            engine.push_batch(&batch.records).expect("valid replay");
            let cold = engine.converge_cold().unwrap();
            let warm = engine.converge().unwrap();
            assert_eq!(warm.answers_seen, cold.answers_seen);
            warm_total += warm.result.iterations;
            cold_total += cold.result.iterations;
            batches += 1;
        }
        assert_eq!(batches, 6);
        assert!(
            warm_total < cold_total,
            "warm {warm_total} vs cold {cold_total} total iterations"
        );
        assert_eq!(engine.answers_seen(), d.num_answers());
    }

    #[test]
    fn streamed_result_matches_batch_inference_at_the_end() {
        // After the last batch, a *cold* converge over the full stream
        // must agree exactly with batch inference on the equivalent
        // dataset — the stream view is the same answer log.
        let d = PaperDataset::DPosSent.generate(0.1, 5);
        let mut engine =
            StreamEngine::new(decision_config(Method::Ds, d.num_tasks(), d.num_workers())).unwrap();
        for batch in StreamSession::from_dataset(&d, 500) {
            engine.push_batch(&batch.records).expect("valid replay");
        }
        let streamed = engine.converge_cold().unwrap();
        use crowd_core::TruthInference;
        let batch = Ds.infer(&d, &InferenceOptions::default()).unwrap();
        assert_eq!(streamed.result.truths, batch.truths);
        assert_eq!(streamed.result.iterations, batch.iterations);
    }

    #[test]
    fn mv_streams_without_warm_state() {
        let d = PaperDataset::DPosSent.generate(0.05, 9);
        let mut engine =
            StreamEngine::new(decision_config(Method::Mv, d.num_tasks(), d.num_workers())).unwrap();
        for batch in StreamSession::from_dataset(&d, 200) {
            engine.push_batch(&batch.records).expect("valid replay");
            let r = engine.converge().unwrap();
            assert_eq!(r.result.iterations, 1);
            assert!(r.result.converged);
        }
    }
}
