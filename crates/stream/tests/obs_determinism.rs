//! Determinism guard: metrics must be *observation only*. A stream
//! driven with recording on and an identical stream driven with
//! recording off must produce bit-identical truths, posteriors, and
//! iteration counts — instrumentation that perturbs the EM trajectory
//! would silently invalidate every golden and equivalence fixture.
//!
//! Lives in its own integration-test binary because it flips the
//! process-global `crowd_obs` enable flag, which would race any other
//! test recording concurrently.

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{StreamSession, TaskType};
use crowd_stream::{ConvergeBudget, StreamConfig, StreamEngine};

fn run_stream(method: Method) -> Vec<(Vec<crowd_data::Answer>, Vec<Vec<u64>>, usize)> {
    let d = PaperDataset::DProduct.generate(0.07, 17);
    let cfg = StreamConfig::new(
        method,
        TaskType::DecisionMaking,
        d.num_tasks(),
        d.num_workers(),
    );
    let mut engine = StreamEngine::new(cfg).unwrap();
    let mut out = Vec::new();
    for batch in StreamSession::from_dataset(&d, d.num_answers().div_ceil(5)) {
        engine.push_batch(&batch.records).expect("valid replay");
        // Budgeted slices exercise the warm-resume path too.
        let r = engine
            .converge_budgeted(ConvergeBudget::iterations(7))
            .unwrap();
        let posterior_bits: Vec<Vec<u64>> = r
            .result
            .posteriors
            .as_ref()
            .map(|rows| {
                rows.iter()
                    .map(|row| row.iter().map(|x| x.to_bits()).collect())
                    .collect()
            })
            .unwrap_or_default();
        out.push((r.result.truths.clone(), posterior_bits, r.result.iterations));
    }
    out
}

#[test]
fn metrics_do_not_perturb_converge_trajectories() {
    for method in [Method::Ds, Method::Glad] {
        crowd_obs::set_enabled(true);
        let with_metrics = run_stream(method);
        let recorded = crowd_obs::snapshot();
        assert!(
            recorded.counter("stream.engine.batches_total") > 0,
            "instrumentation did not fire with recording on"
        );

        crowd_obs::set_enabled(false);
        let without_metrics = run_stream(method);
        crowd_obs::set_enabled(true);

        assert_eq!(
            with_metrics, without_metrics,
            "{method:?}: metrics recording changed the EM trajectory"
        );
    }
}
