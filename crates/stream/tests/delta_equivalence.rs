//! Delta-CSR equivalence: **any** interleaving of appends and
//! compactions yields views bit-identical to a one-shot `Cat::build` /
//! `Num::build` over the same records.
//!
//! The argument the property pins down: the base CSR always covers a
//! *prefix* of the arrival-order log, per-row delta buffers hold the
//! suffix in arrival order, and `Csr::from_triples` is a stable counting
//! sort — so a row's chained (base + delta) sequence equals the row of a
//! full rebuild, at every point in time, no matter when compactions
//! happened.

use crowd_core::views::{Cat, Num};
use crowd_core::InferenceOptions;
use crowd_data::DatasetBuilder;
use crowd_data::TaskType;
use crowd_stream::{DeltaCat, DeltaNum};
use proptest::prelude::*;

/// One stream event: `(task, worker, label, compaction coin)`.
type StreamEvent = (usize, usize, u8, u8);

/// A random stream: unique `(task, worker)` edges with labels, plus a
/// compaction coin per edge (compact after pushing that edge).
fn arb_stream() -> impl Strategy<Value = (usize, usize, u8, Vec<StreamEvent>)> {
    (2usize..12, 2usize..8, 2u8..5).prop_flat_map(|(n, m, l)| {
        // The final `0u8..2` draw is a compaction coin (the vendored
        // proptest has no bool strategy): 1 = compact after this push.
        proptest::collection::vec((0..n, 0..m, 0..l, 0u8..2), 0..(n * m).min(90)).prop_map(
            move |edges| {
                let mut seen = std::collections::HashSet::new();
                let unique: Vec<_> = edges
                    .into_iter()
                    .filter(|&(t, w, _, _)| seen.insert((t, w)))
                    .collect();
                (n, m, l, unique)
            },
        )
    })
}

/// One-shot reference build over a record prefix, via the same
/// `Cat::build` path the batch methods use.
fn reference_cat(n: usize, m: usize, l: u8, records: &[(usize, usize, u8, u8)]) -> Cat {
    let mut b = DatasetBuilder::new("ref", TaskType::SingleChoice { choices: l }, n, m);
    for &(t, w, label, _) in records {
        b.add_label(t, w, label).expect("unique valid edge");
    }
    Cat::build("ref", &b.build(), &InferenceOptions::default(), false).expect("categorical")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At every step of the stream — whatever the interleaving of
    /// appends and compactions — the chained views match the one-shot
    /// build over the records pushed so far; and after a final
    /// compaction the produced `Cat` is bit-identical to `Cat::build`.
    #[test]
    fn any_interleaving_matches_one_shot_build((n, m, l, stream) in arb_stream()) {
        let mut delta = DeltaCat::new(n, m, l as usize);
        for (step, &(t, w, label, compact_now)) in stream.iter().enumerate() {
            delta.push(t, w, label).expect("valid edge");
            if compact_now == 1 {
                delta.compact();
            }
            // Compare the live chained views against a one-shot build of
            // the prefix (cheap datasets, few cases — exhaustive on
            // every step is the point).
            let reference = reference_cat(n, m, l, &stream[..=step]);
            prop_assert_eq!(delta.num_answers(), reference.num_answers());
            for task in 0..n {
                let live: Vec<(u32, u8)> = delta.task_answers(task).collect();
                let want: Vec<(u32, u8)> = reference.task_row(task).to_vec();
                prop_assert_eq!(&live, &want, "task {} at step {}", task, step);
            }
            for worker in 0..m {
                let live: Vec<(u32, u8)> = delta.worker_answers(worker).collect();
                let want: Vec<(u32, u8)> = reference.worker_row(worker).to_vec();
                prop_assert_eq!(&live, &want, "worker {} at step {}", worker, step);
            }
        }
        // Final compaction: the materialised `Cat` itself is
        // bit-identical to the one-shot build (same slices row by row).
        delta.compact();
        let cat = delta.as_cat();
        let reference = reference_cat(n, m, l, &stream);
        prop_assert_eq!(cat.n, reference.n);
        prop_assert_eq!(cat.m, reference.m);
        prop_assert_eq!(cat.l, reference.l);
        for task in 0..n {
            prop_assert_eq!(cat.task_row(task), reference.task_row(task));
        }
        for worker in 0..m {
            prop_assert_eq!(cat.worker_row(worker), reference.worker_row(worker));
        }
    }

    /// The numeric delta view honours the same guarantee, with `f64`
    /// values compared as bit patterns.
    #[test]
    fn numeric_interleaving_matches_one_shot_build(
        (n, m, edges) in (2usize..10, 2usize..6).prop_flat_map(|(n, m)| {
            proptest::collection::vec(
                (0..n, 0..m, -100.0f64..100.0, 0u8..2),
                0..(n * m).min(60),
            )
            .prop_map(move |edges| {
                let mut seen = std::collections::HashSet::new();
                let unique: Vec<_> = edges
                    .into_iter()
                    .filter(|&(t, w, _, _)| seen.insert((t, w)))
                    .collect();
                (n, m, unique)
            })
        })
    ) {
        let mut delta = DeltaNum::new(n, m);
        let mut b = DatasetBuilder::new("refn", TaskType::Numeric, n, m);
        for &(t, w, v, compact_now) in &edges {
            delta.push(t, w, v).expect("finite value");
            b.add_numeric(t, w, v).expect("unique valid edge");
            if compact_now == 1 {
                delta.compact();
            }
        }
        delta.compact();
        let reference =
            Num::build("refn", &b.build(), &InferenceOptions::default(), false).expect("numeric");
        let num = delta.as_num();
        prop_assert_eq!(num.n, reference.n);
        for task in 0..n {
            let live: Vec<(usize, u64)> =
                num.task(task).map(|(w, v)| (w, v.to_bits())).collect();
            let want: Vec<(usize, u64)> =
                reference.task(task).map(|(w, v)| (w, v.to_bits())).collect();
            prop_assert_eq!(live, want, "task {} values must be bit-identical", task);
        }
        for worker in 0..m {
            let live: Vec<(usize, u64)> =
                num.worker(worker).map(|(t, v)| (t, v.to_bits())).collect();
            let want: Vec<(usize, u64)> = reference
                .worker(worker)
                .map(|(t, v)| (t, v.to_bits()))
                .collect();
            prop_assert_eq!(live, want, "worker {} values must be bit-identical", worker);
        }
    }
}
