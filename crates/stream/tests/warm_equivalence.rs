//! Warm-start fixed-point equivalence, pinned on a fixture stream.
//!
//! The guarantee documented in ARCHITECTURE.md ("Streaming subsystem"):
//! re-converging from a warm start reaches the same fixed point as a
//! cold restart over the same answers —
//!
//! - **labels exact on every decisive task** (cold posterior margin
//!   above [`DECISIVE_MARGIN`]) at every round, and exact equality with
//!   batch inference at the end of the fixture stream (a uniform
//!   collection run over the D_PosSent configuration at 10% scale,
//!   seed 5, replayed as ten equal batches);
//! - **numerics within the documented tolerance**: posterior cells of
//!   decisive tasks drift less than [`DECISIVE_POSTERIOR_DRIFT`], and no
//!   cell of any task drifts more than [`MAX_POSTERIOR_DRIFT`] — i.e.
//!   the two stopping points agree tightly wherever the data determines
//!   the answer, and nowhere disagree by more than the decisive margin
//!   itself.
//!
//! Borderline caveat, also documented: at the default stopping tolerance
//! (1e-3 on mean parameter change) a warm run continues the same EM
//! trajectory slightly *past* the cold run's stopping point, and on a
//! mid-stream prefix an under-determined task can sit near the decision
//! boundary — such tasks can legitimately decode differently between the
//! two stopping points (observed: one task in a hundred, mid-stream
//! only); decisive tasks cannot.

use crowd_core::{InferenceOptions, Method, TruthInference};
use crowd_data::datasets::PaperDataset;
use crowd_data::{collect, AssignmentStrategy, StreamSession};
use crowd_stream::{StreamConfig, StreamEngine};

/// Drift bound for cells of decisive tasks — a fifth of the decisive
/// margin, so admissible drift leaves a decisive task's label
/// unambiguous.
const DECISIVE_POSTERIOR_DRIFT: f64 = 0.1;
/// Hard ceiling for any single posterior cell's warm-vs-cold drift
/// (borderline tasks included).
const MAX_POSTERIOR_DRIFT: f64 = 0.5;
/// Cold posterior margin above which a task counts as decisive.
const DECISIVE_MARGIN: f64 = 0.5;

#[test]
fn warm_stream_matches_cold_fixed_point_on_fixture() {
    // The fixture stream is a simulated *collection run* (uniform
    // assignment), whose arrival order interleaves answers across the
    // whole task universe — the realistic streaming regime, where every
    // batch refines every task a little and the warm state stays
    // representative. (A task-major replay, where each batch introduces
    // never-seen tasks answered by workers whose quality was fitted to a
    // handful of answers, is the adversarial cold-start regime: there EM
    // is multimodal and warm/cold can pick different basins for the new
    // tasks — which is why the engine shrinks warm worker state by
    // answer count, and why streaming deployments should batch by time,
    // not by task.)
    let config = PaperDataset::DPosSent.config(0.1);
    let budget = config.num_tasks * 20;
    let run = collect(&config, AssignmentStrategy::Uniform, budget, 5).expect("categorical");
    let dataset = run.dataset.clone();
    let mut engine = StreamEngine::new(StreamConfig::new(
        Method::Ds,
        dataset.task_type(),
        dataset.num_tasks(),
        dataset.num_workers(),
    ))
    .expect("categorical D&S session");

    let batch_size = dataset.num_answers().div_ceil(10);
    let mut warm_total = 0usize;
    let mut cold_total = 0usize;
    for batch in StreamSession::replay(&run, batch_size) {
        engine.push_batch(&batch.records).expect("valid replay");
        let cold = engine.converge_cold().expect("cold converge");
        let warm = engine.converge().expect("warm converge");
        assert!(warm.result.converged, "warm run must converge");

        // Fixed point: labels exact on every decisive task, posteriors
        // within the documented tolerance.
        let wp = warm.result.posteriors.as_ref().expect("D&S posteriors");
        let cp = cold.result.posteriors.as_ref().expect("D&S posteriors");
        for (task, (w, c)) in wp.iter().zip(cp).enumerate() {
            let margin = (c[0] - c[1]).abs();
            let decisive = margin > DECISIVE_MARGIN;
            if decisive {
                assert_eq!(
                    warm.result.truths[task], cold.result.truths[task],
                    "decisive task {task} (margin {margin}) flipped at round {}",
                    batch.round
                );
            }
            for (a, b) in w.iter().zip(c) {
                let d = (a - b).abs();
                if decisive {
                    assert!(
                        d < DECISIVE_POSTERIOR_DRIFT,
                        "decisive task {task} drifted {d} at round {}",
                        batch.round
                    );
                }
                assert!(
                    d < MAX_POSTERIOR_DRIFT,
                    "task {task} drift {d} exceeds hard ceiling at round {}",
                    batch.round
                );
            }
        }

        // Re-convergence economics: a warmed batch never costs more
        // than one extra iteration over the cold restart (a batch of new
        // answers still has to be absorbed), and across the stream the
        // warm path is strictly cheaper.
        if batch.round > 0 {
            assert!(
                warm.result.iterations <= cold.result.iterations + 1,
                "round {}: warm {} vs cold {} iterations",
                batch.round,
                warm.result.iterations,
                cold.result.iterations
            );
            warm_total += warm.result.iterations;
            cold_total += cold.result.iterations;
        }
    }
    assert!(
        warm_total < cold_total,
        "warm {warm_total} vs cold {cold_total} total iterations over the stream"
    );

    // End of stream: the engine's state describes the full log, so a
    // final cold converge must agree exactly with batch inference on
    // the equivalent dataset.
    let streamed = engine.converge_cold().expect("final cold converge");
    let batch = crowd_core::methods::Ds
        .infer(&dataset, &InferenceOptions::default())
        .expect("batch D&S");
    assert_eq!(streamed.result.truths, batch.truths);
}
