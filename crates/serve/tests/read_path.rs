//! The wait-free read path, pinned:
//!
//! 1. **Strictly monotonic epochs** — readers polling from several
//!    threads while drain ticks run concurrently only ever see the
//!    epoch counter advance, never repeat or regress, and every
//!    snapshot is internally consistent (no torn plurality/report
//!    pairs).
//! 2. **Snapshot fidelity** — the published snapshot after a replay is
//!    bit-identical to a lone `StreamEngine` replay of the same batch
//!    schedule: same plurality, same posterior bits, same counters.
//! 3. **Readers survive eviction** — a `TruthReader` held across
//!    `evict` degrades to the typed `SessionGone` state carrying the
//!    session's final truths; it never errors or dangles.
//! 4. **Epochs survive recovery** — `CrowdServe::recover` re-seeds the
//!    epoch counter above anything the pre-crash service published, so
//!    a reader re-acquired after recovery still sees monotone epochs.
//!
//! (The wedged-converge wait-free latency check lives in the crate's
//! unit tests — it needs the `ConvergeGate` debug hook, which is only
//! compiled for the crate's own test build.)

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{AnswerRecord, StreamSession};
use crowd_serve::{CrowdServe, DurabilityConfig, FsyncPolicy, ServeConfig};
use crowd_stream::{StreamConfig, StreamEngine};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Self-cleaning scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "crowd-serve-read-path-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A session's replay source: a scaled paper dataset split into batches.
fn session_batches(batch_count: usize, seed: u64) -> (StreamConfig, Vec<Vec<AnswerRecord>>) {
    let d = PaperDataset::DProduct.generate(0.03, seed);
    let config = StreamConfig::new(Method::Ds, d.task_type(), d.num_tasks(), d.num_workers());
    let batch_size = d.num_answers().div_ceil(batch_count).max(1);
    let batches = StreamSession::from_dataset(&d, batch_size)
        .map(|b| b.records)
        .collect();
    (config, batches)
}

fn posterior_bits(p: Option<&[Vec<f64>]>) -> Vec<Vec<u64>> {
    p.map(|rows| {
        rows.iter()
            .map(|r| r.iter().map(|x| x.to_bits()).collect())
            .collect()
    })
    .unwrap_or_default()
}

#[test]
fn epochs_are_strictly_monotonic_under_concurrent_ticks() {
    let (config, batches) = session_batches(6, 21);
    let serve = CrowdServe::new(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let sid = serve.create_session(config).unwrap();
    let reader = serve.reader(sid).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // 4 clones, 4 polling threads — each clone owns its hazard slot.
        let pollers: Vec<_> = (0..4)
            .map(|_| {
                let r = reader.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = r.snapshot();
                        assert!(
                            snap.epoch >= last,
                            "epoch regressed: {} after {last}",
                            snap.epoch
                        );
                        if snap.epoch > last {
                            seen += 1;
                            // Internal consistency at every epoch: the
                            // report (when present) describes the same
                            // answer count as the stats — a torn
                            // publish would break this immediately.
                            if let Some(report) = &snap.report {
                                assert_eq!(report.answers_seen, snap.stats.answers_seen);
                                assert_eq!(snap.plurality.len(), report.result.truths.len());
                            }
                        }
                        last = snap.epoch;
                    }
                    (last, seen)
                })
            })
            .collect();

        for batch in &batches {
            serve.submit(sid, batch.clone()).unwrap();
            let tick = serve.drain_tick();
            assert!(tick.errors.is_empty(), "{:?}", tick.errors);
        }
        stop.store(true, Ordering::Relaxed);
        let final_epoch = serve.truth(sid).unwrap().epoch;
        // create_session published epoch 1; each tick published one more.
        assert_eq!(final_epoch, 1 + batches.len() as u64);
        for p in pollers {
            let (last, _seen) = p.join().unwrap();
            assert!(last <= final_epoch);
        }
    });
}

#[test]
fn published_snapshot_is_bit_identical_to_lone_engine_replay() {
    let (config, batches) = session_batches(5, 33);
    let serve = CrowdServe::new(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let sid = serve.create_session(config.clone()).unwrap();
    for batch in &batches {
        serve.submit(sid, batch.clone()).unwrap();
        let tick = serve.drain_tick();
        assert!(tick.errors.is_empty(), "{:?}", tick.errors);
    }
    let snap = serve.truth(sid).unwrap();

    // The reference: a lone engine, same schedule, default (unbudgeted)
    // converge per batch — exactly what the drain ticks ran.
    let mut engine = StreamEngine::new(config).unwrap();
    let mut last = None;
    for batch in &batches {
        engine.push_batch(batch).unwrap();
        if engine.needs_converge() {
            last = Some(engine.converge().unwrap());
        }
    }
    let reference = last.expect("converged");

    assert!(snap.state.is_live());
    assert_eq!(snap.plurality, engine.current_estimates());
    assert_eq!(snap.stats.answers_seen, engine.answers_seen());
    assert_eq!(snap.stats.converges, engine.converges());
    let report = snap.report.as_ref().expect("converged");
    assert_eq!(report.result.truths, reference.result.truths);
    assert_eq!(
        posterior_bits(snap.posteriors()),
        posterior_bits(reference.result.posteriors.as_deref()),
        "posterior bits diverged from the lone-engine replay"
    );
}

#[test]
fn held_reader_survives_eviction_as_session_gone() {
    let (config, batches) = session_batches(3, 44);
    let serve = CrowdServe::new(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let sid = serve.create_session(config).unwrap();
    for batch in &batches {
        serve.submit(sid, batch.clone()).unwrap();
        serve.drain_tick();
    }
    let reader = serve.reader(sid).unwrap();
    let live = reader.snapshot();
    assert!(live.state.is_live());

    let evicted = serve.evict(sid).unwrap();
    let final_report = evicted.final_report.expect("converged");

    // The service no longer knows the session...
    assert!(serve.truth(sid).is_err());
    assert!(serve.reader(sid).is_err());
    assert!(serve.sessions().is_empty());

    // ...but the held reader keeps serving the terminal snapshot: typed
    // SessionGone, carrying the session's final truths.
    let gone = reader.snapshot();
    assert!(gone.state.is_gone(), "state: {:?}", gone.state);
    assert!(gone.epoch > live.epoch, "eviction published");
    assert_eq!(
        gone.report.as_ref().map(|r| r.result.truths.clone()),
        Some(final_report.result.truths.clone()),
        "terminal snapshot carries the final report"
    );
    // Clones taken after eviction still work (fresh hazard slot).
    let clone = reader.clone();
    assert!(clone.snapshot().state.is_gone());
}

#[test]
fn epoch_numbering_survives_wal_recovery() {
    let (config, batches) = session_batches(4, 55);
    let dir = TempDir::new("epoch");
    let durable = || {
        Some(DurabilityConfig {
            dir: dir.path().to_path_buf(),
            fsync: FsyncPolicy::Never,
            snapshot_every_converges: 2,
            max_session_restarts: 3,
        })
    };
    let serve = CrowdServe::new(ServeConfig {
        shards: 1,
        durability: durable(),
        ..ServeConfig::default()
    })
    .unwrap();
    let sid = serve.create_session(config).unwrap();
    let (tail, converged) = batches.split_last().unwrap();
    for batch in converged {
        serve.submit(sid, batch.clone()).unwrap();
        serve.drain_tick();
    }
    // Logged but never converged: the crash leaves a WAL tail that
    // recovery must requeue.
    serve.submit(sid, tail.clone()).unwrap();
    let pre_crash = serve.truth(sid).unwrap();
    assert_eq!(pre_crash.epoch, 1 + converged.len() as u64);
    drop(serve); // crash boundary

    let (recovered, report) = CrowdServe::recover(ServeConfig {
        shards: 1,
        durability: durable(),
        ..ServeConfig::default()
    })
    .unwrap();
    assert_eq!(report.sessions_recovered, 1);
    let sid = recovered.sessions()[0];
    let post = recovered.truth(sid).unwrap();
    assert!(
        post.epoch >= pre_crash.epoch,
        "recovery re-seeded below the pre-crash epoch: {} < {}",
        post.epoch,
        pre_crash.epoch
    );
    assert_eq!(post.plurality, pre_crash.plurality, "recovered truths");

    // Epochs keep climbing monotonically from the recovered seed: the
    // requeued tail converges on the next tick and publishes above it.
    let reader = recovered.reader(sid).unwrap();
    let before = reader.snapshot().epoch;
    let tick = recovered.drain_tick();
    assert_eq!(tick.answers_ingested, tail.len());
    let after = reader.snapshot();
    assert!(after.epoch > before);
    assert_eq!(after.stats.answers_seen, batches.iter().map(Vec::len).sum());
}
