//! Seeded chaos: random faults on every injection site — WAL appends
//! (clean errors and torn writes), snapshot writes, and converge panics —
//! driven through a full serve workload, then crash-recovered.
//!
//! The seed comes from `CROWD_FAULT_SEED` (the CI chaos job runs a seed
//! matrix); any failure reproduces exactly from its seed. Invariants:
//!
//! 1. The service never panics and never returns an untyped failure —
//!    every fault surfaces as a `ServeError` variant or a tick-report
//!    entry.
//! 2. Whatever the faults did, `CrowdServe::recover` on the directory
//!    succeeds: every session either recovers or is skipped with a
//!    reason.
//! 3. Recovery through the snapshot fast path and recovery through pure
//!    WAL replay agree (snapshots are never a correctness dependency).
//! 4. Recovery is idempotent: recovering the same directory twice yields
//!    the same state.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crowd_core::Method;
use crowd_data::{Answer, AnswerRecord, TaskType};
use crowd_serve::{
    CrowdServe, DurabilityConfig, FaultPlan, FsyncPolicy, ServeConfig, ServeError, SessionId,
};
use crowd_stream::StreamConfig;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "crowd-serve-chaos-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn chaos_seed() -> u64 {
    match std::env::var("CROWD_FAULT_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CROWD_FAULT_SEED must be a u64, got {s:?}")),
        Err(_) => 0xC0FFEE,
    }
}

const SESSIONS: usize = 4;
const ROUNDS: usize = 12;
const BATCH: usize = 5;
const TASKS: usize = 30;
const WORKERS: usize = 10;

fn session_config() -> StreamConfig {
    StreamConfig::new(Method::Ds, TaskType::DecisionMaking, TASKS, WORKERS)
}

/// Unique (task, worker) per record within a session for the whole run.
fn round_batch(round: usize) -> Vec<AnswerRecord> {
    (round * BATCH..(round + 1) * BATCH)
        .map(|j| AnswerRecord {
            task: j % TASKS,
            worker: (j / TASKS) % WORKERS,
            answer: Answer::Label((j / 3 % 2) as u8),
        })
        .collect()
}

fn chaos_config(dir: &Path, seed: u64) -> ServeConfig {
    ServeConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::EveryN(2),
            snapshot_every_converges: 2,
            max_session_restarts: 2,
        }),
        fault: FaultPlan::seeded(seed)
            .wal_error_rate(0.08)
            .wal_torn_rate(0.04)
            .snapshot_error_rate(0.30)
            .converge_panic_rate(0.10)
            .build(),
        ..ServeConfig::default()
    }
}

fn recovery_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every_converges: 2,
            max_session_restarts: 2,
        }),
        ..ServeConfig::default()
    }
}

fn pluralities(serve: &CrowdServe) -> Vec<(SessionId, Option<Vec<Option<u8>>>)> {
    serve
        .sessions()
        .into_iter()
        .map(|sid| {
            let snap = serve.truth(sid).unwrap();
            let plur = snap.state.is_live().then(|| snap.plurality.clone());
            (sid, plur)
        })
        .collect()
}

#[test]
fn chaos_workload_stays_typed_and_crash_recovers() {
    let seed = chaos_seed();
    let dir = TempDir::new("run");
    let serve = CrowdServe::new(chaos_config(dir.path(), seed)).unwrap();
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|_| serve.create_session(session_config()).unwrap())
        .collect();

    let mut typed_errors = 0usize;
    let mut tick_errors = 0usize;
    let mut poisonings = 0usize;
    let mut restarts = 0usize;
    for round in 0..ROUNDS {
        for &sid in &ids {
            // Invariant 1: every submit outcome is Ok or a typed error.
            // One bounded retry on Durability — injected clean errors are
            // transient; a wedged WAL keeps refusing, which is fine.
            for _attempt in 0..2 {
                match serve.submit(sid, round_batch(round)) {
                    Ok(()) => break,
                    Err(
                        ServeError::Durability { .. }
                        | ServeError::SessionPoisoned(_)
                        | ServeError::Backpressure { .. },
                    ) => {
                        typed_errors += 1;
                    }
                    Err(other) => panic!("seed {seed}: unexpected error {other}"),
                }
            }
        }
        let tick = serve.drain_tick();
        assert_eq!(tick.shard_failures, 0, "seed {seed}");
        tick_errors += tick.errors.len();
        poisonings += tick.poisoned.len();
        restarts += tick.sessions_restarted;
        // Reads never error mid-chaos: a poisoned session's published
        // truth degrades to the typed stale state instead.
        for &sid in &ids {
            let snap = serve.truth(sid).unwrap_or_else(|e| {
                panic!("seed {seed}: unexpected read error {e}");
            });
            match &snap.state {
                s if s.is_live() => assert_eq!(snap.plurality.len(), TASKS, "seed {seed}"),
                s => assert!(s.is_stale(), "seed {seed}: unexpected state {s:?}"),
            }
        }
    }
    println!(
        "seed {seed}: {typed_errors} typed submit errors, {tick_errors} tick errors, \
         {poisonings} poisonings, {restarts} restarts"
    );
    drop(serve); // crash boundary (files are whatever the faults left)

    // Invariant 2: recovery always succeeds, accounting for every session.
    let (recovered, report) = CrowdServe::recover(recovery_config(dir.path())).unwrap();
    assert_eq!(
        report.sessions_recovered + report.sessions_skipped,
        SESSIONS,
        "seed {seed}: {report:?}"
    );
    for (sid, reason) in &report.skipped {
        println!("seed {seed}: session {sid} skipped: {reason}");
    }
    let with_snap = pluralities(&recovered);

    // Invariant 4: recovering the same directory again lands in the same
    // state (the first recovery's truncation already healed the logs).
    let (again, report2) = CrowdServe::recover(recovery_config(dir.path())).unwrap();
    assert_eq!(report2.sessions_recovered, report.sessions_recovered);
    assert_eq!(report2.torn_tails_truncated, 0, "first recovery truncated");
    assert_eq!(pluralities(&again), with_snap, "seed {seed}");
    drop(again);

    // Invariant 3: delete every snapshot and recover once more — pure WAL
    // replay must agree with the snapshot-assisted recovery.
    drop(recovered);
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "snap") {
            std::fs::remove_file(path).unwrap();
        }
    }
    let (replayed, report3) = CrowdServe::recover(recovery_config(dir.path())).unwrap();
    assert_eq!(report3.snapshots_used, 0);
    assert_eq!(
        pluralities(&replayed),
        with_snap,
        "seed {seed}: snapshot path diverged from replay path"
    );

    // The recovered service is serviceable: drain the requeued tails and
    // push a fresh round into every recovered session.
    replayed.drain_tick();
    for sid in replayed.sessions() {
        replayed.submit(sid, round_batch(ROUNDS)).unwrap();
    }
    let tick = replayed.drain_tick();
    assert_eq!(tick.shard_failures, 0, "seed {seed}");

    // The whole ordeal leaves a metrics trail: injected faults, session
    // restarts, and all four recovery phases show up in the
    // process-global registry (registry counts are cumulative across the
    // test binary, hence the `>=` comparisons).
    let obs = crowd_obs::snapshot();
    assert!(
        obs.counter("serve.wal.faults_total") + obs.counter("serve.snapshot.faults_total") > 0,
        "seed {seed}: fault injection left no metric trail"
    );
    assert!(
        obs.counter("serve.shard.session_restarts_total") >= restarts as u64,
        "seed {seed}: restarts under-counted"
    );
    assert!(
        obs.counter("serve.recovery.sessions_recovered_total") >= report.sessions_recovered as u64,
        "seed {seed}: recoveries under-counted"
    );
    for phase in [
        "serve.recovery.scan_seconds",
        "serve.recovery.snapshot_load_seconds",
        "serve.recovery.replay_seconds",
        "serve.recovery.requeue_seconds",
    ] {
        let h = obs
            .histogram(phase)
            .unwrap_or_else(|| panic!("seed {seed}: {phase} missing from snapshot"));
        assert!(h.count > 0, "seed {seed}: {phase} never recorded");
    }
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let seed = chaos_seed();
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let dir = TempDir::new("det");
        let serve = CrowdServe::new(chaos_config(dir.path(), seed)).unwrap();
        let ids: Vec<SessionId> = (0..SESSIONS)
            .map(|_| serve.create_session(session_config()).unwrap())
            .collect();
        let mut trace = Vec::new();
        for round in 0..ROUNDS {
            for &sid in &ids {
                trace.push(match serve.submit(sid, round_batch(round)) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("{e}"),
                });
            }
            let tick = serve.drain_tick();
            trace.push(format!(
                "tick: ingested={} poisoned={:?} restarted={} errors={:?}",
                tick.answers_ingested, tick.poisoned, tick.sessions_restarted, tick.errors
            ));
        }
        outcomes.push(trace);
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "seed {seed}: identical seed must replay the identical fault trace"
    );
}
