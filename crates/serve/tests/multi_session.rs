//! The two service-layer guarantees, pinned:
//!
//! 1. **Bit-identical multi-tenancy** — K concurrent sessions fed
//!    interleaved deltas (submitted from K threads, drained by sharded
//!    pool workers) produce truths and posteriors **bit-identical** to K
//!    sequential single-session `StreamEngine` replays of the same
//!    per-session batch sequences, budgeted ticks included.
//! 2. **Failure isolation** — a panic inside one session's converge
//!    poisons only that session; sibling sessions on the same and other
//!    shards keep serving with unchanged outputs.

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{AnswerRecord, StreamSession};
use crowd_serve::{
    CrowdServe, FaultKind, FaultPlan, FaultSite, ServeConfig, ServeError, SessionId,
};
use crowd_stream::{ConvergeBudget, StreamConfig, StreamEngine};
use proptest::prelude::*;

/// Per-session replay source: a scaled paper dataset split into batches.
fn session_batches(seed: u64, batch_count: usize) -> (StreamConfig, Vec<Vec<AnswerRecord>>) {
    let d = PaperDataset::DProduct.generate(0.04, seed);
    let config = StreamConfig::new(Method::Ds, d.task_type(), d.num_tasks(), d.num_workers());
    let batch_size = d.num_answers().div_ceil(batch_count).max(1);
    let batches = StreamSession::from_dataset(&d, batch_size)
        .map(|b| b.records)
        .collect();
    (config, batches)
}

/// Posterior matrix as raw bits, for exact comparison.
fn posterior_bits(p: &Option<Vec<Vec<f64>>>) -> Vec<Vec<u64>> {
    p.as_ref()
        .map(|rows| {
            rows.iter()
                .map(|r| r.iter().map(|x| x.to_bits()).collect())
                .collect()
        })
        .unwrap_or_default()
}

/// Drive the serve path: one submitting thread per session per round,
/// one drain tick per round, then drain until every session is clean.
/// Returns each session's final report (truths + posteriors).
fn run_served(
    shards: usize,
    budget: usize,
    sessions: &[(StreamConfig, Vec<Vec<AnswerRecord>>)],
) -> Vec<(Vec<crowd_data::Answer>, Vec<Vec<u64>>)> {
    let serve = CrowdServe::new(ServeConfig {
        shards,
        tick_iteration_budget: budget,
        ..ServeConfig::default()
    })
    .expect("valid config");
    let ids: Vec<SessionId> = sessions
        .iter()
        .map(|(cfg, _)| serve.create_session(cfg.clone()).expect("valid session"))
        .collect();

    let rounds = sessions.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
    for round in 0..rounds {
        // Interleaved ingest: every session that still has a batch this
        // round submits it from its own thread, concurrently.
        std::thread::scope(|scope| {
            for (k, (_, batches)) in sessions.iter().enumerate() {
                if let Some(batch) = batches.get(round) {
                    let serve = &serve;
                    let sid = ids[k];
                    let records = batch.clone();
                    scope.spawn(move || serve.submit(sid, records).expect("in capacity"));
                }
            }
        });
        let tick = serve.drain_tick();
        assert_eq!(tick.shard_failures, 0);
        assert!(tick.poisoned.is_empty());
        assert!(tick.errors.is_empty(), "replay is valid: {:?}", tick.errors);
    }
    // Budget-exhausted sessions keep resuming on further ticks.
    for _ in 0..400 {
        if ids
            .iter()
            .all(|&sid| !serve.truth(sid).unwrap().stats.needs_converge)
        {
            break;
        }
        serve.drain_tick();
    }
    ids.iter()
        .map(|&sid| {
            let snap = serve.truth(sid).unwrap();
            assert!(!snap.stats.needs_converge, "session never converged");
            let report = snap.report.as_ref().expect("converged at least once");
            (
                report.result.truths.clone(),
                posterior_bits(&report.result.posteriors),
            )
        })
        .collect()
}

/// The sequential reference: a lone `StreamEngine` per session, same
/// batch sequence, same budgeted converge at every point a drain tick
/// would have converged it.
fn run_sequential(
    budget: usize,
    sessions: &[(StreamConfig, Vec<Vec<AnswerRecord>>)],
) -> Vec<(Vec<crowd_data::Answer>, Vec<Vec<u64>>)> {
    sessions
        .iter()
        .map(|(cfg, batches)| {
            let mut engine = StreamEngine::new(cfg.clone()).expect("valid session");
            let rounds = sessions.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
            let mut last = None;
            for round in 0..rounds {
                if let Some(batch) = batches.get(round) {
                    engine.push_batch(batch).expect("valid replay");
                }
                if engine.needs_converge() {
                    last = Some(
                        engine
                            .converge_budgeted(ConvergeBudget::iterations(budget))
                            .expect("converges"),
                    );
                }
            }
            for _ in 0..400 {
                if !engine.needs_converge() {
                    break;
                }
                last = Some(
                    engine
                        .converge_budgeted(ConvergeBudget::iterations(budget))
                        .expect("converges"),
                );
            }
            let report = last.expect("at least one converge");
            assert!(report.result.converged);
            (
                report.result.truths.clone(),
                posterior_bits(&report.result.posteriors),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K concurrent sessions ≡ K sequential replays, bit for bit — over
    /// random session counts, shard counts, batch splits, and iteration
    /// budgets (including budgets small enough to force multi-tick
    /// resumes).
    #[test]
    fn concurrent_sessions_match_sequential_replay(
        k in 2usize..=4,
        shards in 1usize..=3,
        batch_count in 2usize..=4,
        budget_sel in 0usize..=2,
        seed in 0u64..1000,
    ) {
        let budget = [3, 25, usize::MAX][budget_sel];
        let sessions: Vec<_> = (0..k)
            .map(|i| session_batches(seed * 7 + i as u64, batch_count))
            .collect();
        let served = run_served(shards, budget, &sessions);
        let sequential = run_sequential(budget, &sessions);
        prop_assert_eq!(served, sequential);
    }
}

#[test]
fn eight_sessions_bit_identical_to_sequential() {
    // The acceptance floor, pinned deterministically: ≥ 8 concurrent
    // sessions across 4 shards, every output bit-identical to sequential
    // single-session replay.
    let sessions: Vec<_> = (0..8).map(|i| session_batches(100 + i, 3)).collect();
    let served = run_served(4, usize::MAX, &sessions);
    let sequential = run_sequential(usize::MAX, &sessions);
    assert_eq!(served, sequential);
}

#[test]
fn panic_in_one_session_leaves_siblings_serving() {
    let sessions: Vec<_> = (0..4).map(|i| session_batches(40 + i, 2)).collect();
    // Deterministic chaos: session 1 (creation order) panics on its
    // second converge attempt (index 1), scheduled through the fault
    // plan rather than any test-only hook.
    let serve = CrowdServe::new(ServeConfig {
        shards: 2,
        fault: FaultPlan::seeded(0)
            .schedule(
                FaultSite::Converge {
                    session: 1,
                    index: 1,
                },
                FaultKind::Panic,
            )
            .build(),
        ..ServeConfig::default()
    })
    .unwrap();
    let ids: Vec<SessionId> = sessions
        .iter()
        .map(|(cfg, _)| serve.create_session(cfg.clone()).unwrap())
        .collect();

    // First round for everyone.
    for (k, (_, batches)) in sessions.iter().enumerate() {
        serve.submit(ids[k], batches[0].clone()).unwrap();
    }
    serve.drain_tick();

    // Second round: the scheduled fault fires inside session 1's converge.
    for (k, (_, batches)) in sessions.iter().enumerate() {
        serve.submit(ids[k], batches[1].clone()).unwrap();
    }
    let tick = serve.drain_tick();
    assert_eq!(tick.poisoned, vec![ids[1]]);
    assert_eq!(tick.shard_failures, 0);
    assert_eq!(tick.sessions_converged, 3, "siblings converged this tick");

    // The poisoned session's published truth degrades to the typed
    // stale state (writes still refuse with a typed error)...
    let snap = serve.truth(ids[1]).unwrap();
    assert!(snap.state.is_stale(), "poisoned publish: {:?}", snap.state);
    assert!(matches!(
        serve.submit(ids[1], sessions[1].1[0].clone()),
        Err(ServeError::SessionPoisoned(_))
    ));
    assert_eq!(serve.stats().poisoned_sessions, 1);

    // ...while every sibling (including the shard-mate of the poisoned
    // session) matches its sequential single-session replay exactly.
    let sequential = run_sequential(usize::MAX, &sessions);
    for k in [0usize, 2, 3] {
        let snap = serve.truth(ids[k]).unwrap();
        let report = snap.report.as_ref().unwrap();
        assert_eq!(report.result.truths, sequential[k].0, "session {k}");
        assert_eq!(posterior_bits(&report.result.posteriors), sequential[k].1);
    }

    // Eviction reclaims the poisoned slot and reports the cause.
    let evicted = serve.evict(ids[1]).unwrap();
    let msg = evicted.poisoned.expect("poison cause recorded");
    assert!(msg.contains("injected"), "{msg}");
    assert_eq!(serve.stats().poisoned_sessions, 0);
    assert_eq!(serve.stats().sessions, 3);
}
