//! The durability guarantees, pinned:
//!
//! 1. **Kill-at-every-frame-boundary recovery** — for a WAL truncated at
//!    *any* frame boundary (a crash between any two durable writes),
//!    [`CrowdServe::recover`] rebuilds the session to exactly the state
//!    the log prefix describes: plurality immediately equals the
//!    uninterrupted run's at that point, and continuing the remaining
//!    schedule lands on **bit-identical** final truths and posteriors.
//!    Verified for ≥ 2 methods × 2 datasets.
//! 2. **Torn tails** — a WAL truncated at *any byte offset*, or with any
//!    single byte corrupted, recovers the longest valid frame prefix and
//!    never errors out.
//! 3. **Corrupt snapshots** — a damaged snapshot silently downgrades to
//!    full-WAL replay with identical outputs; an intact snapshot is a
//!    pure fast path (snapshot-path ≡ replay-path, bit-identical).
//! 4. **Graceful degradation** — poisoned sessions auto-restart from
//!    their last checkpoint bit-identically; a wedged WAL fails submits
//!    typed while reads keep serving.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crowd_core::Method;
use crowd_data::datasets::PaperDataset;
use crowd_data::{Answer, AnswerRecord, StreamSession, TaskType};
use crowd_serve::{
    CrowdServe, DurabilityConfig, FaultKind, FaultPlan, FaultSite, FsyncPolicy, ServeConfig,
    ServeError, SessionId,
};
use crowd_stream::{StreamConfig, StreamReport};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Harness

/// Self-cleaning scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "crowd-serve-durability-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(dir: &Path, snapshot_every: u64) -> ServeConfig {
    ServeConfig {
        shards: 1,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every_converges: snapshot_every,
            max_session_restarts: 3,
        }),
        ..ServeConfig::default()
    }
}

/// A session's replay source: a scaled paper dataset split into batches.
fn session_batches(
    method: Method,
    dataset: PaperDataset,
    batch_count: usize,
    seed: u64,
) -> (StreamConfig, Vec<Vec<AnswerRecord>>) {
    let d = dataset.generate(0.03, seed);
    let config = StreamConfig::new(method, d.task_type(), d.num_tasks(), d.num_workers());
    let batch_size = d.num_answers().div_ceil(batch_count).max(1);
    let batches: Vec<Vec<AnswerRecord>> = StreamSession::from_dataset(&d, batch_size)
        .map(|b| b.records)
        .collect();
    (config, batches)
}

fn posterior_bits(p: &Option<Vec<Vec<f64>>>) -> Vec<Vec<u64>> {
    p.as_ref()
        .map(|rows| {
            rows.iter()
                .map(|r| r.iter().map(|x| x.to_bits()).collect())
                .collect()
        })
        .unwrap_or_default()
}

/// The published plurality for `sid` — what the retired lock-taking
/// `plurality()` getter used to serve.
fn plur_of(serve: &CrowdServe, sid: SessionId) -> Vec<Option<u8>> {
    serve.truth(sid).unwrap().plurality.clone()
}

/// The published last report for `sid`.
fn report_of(serve: &CrowdServe, sid: SessionId) -> Option<StreamReport> {
    serve.truth(sid).unwrap().report.clone()
}

/// Everything the uninterrupted run leaves behind: per-tick plurality
/// snapshots (`plur[t]` = after tick `t`; `plur[0]` = empty session),
/// the final truths + posterior bits, and the raw WAL/snapshot bytes.
struct Reference {
    plur: Vec<Vec<Option<u8>>>,
    truths: Vec<Answer>,
    posteriors: Vec<Vec<u64>>,
    wal: Vec<u8>,
    snap: Option<Vec<u8>>,
}

/// One submit + one drain tick per batch — the schedule every recovery
/// continuation below mirrors.
fn run_reference(
    config: &StreamConfig,
    batches: &[Vec<AnswerRecord>],
    snapshot_every: u64,
) -> Reference {
    let dir = TempDir::new("ref");
    let serve = CrowdServe::new(durable_config(dir.path(), snapshot_every)).unwrap();
    let sid = serve.create_session(config.clone()).unwrap();
    let mut plur = vec![plur_of(&serve, sid)];
    for batch in batches {
        serve.submit(sid, batch.clone()).unwrap();
        let tick = serve.drain_tick();
        assert!(tick.errors.is_empty(), "{:?}", tick.errors);
        assert!(tick.poisoned.is_empty());
        plur.push(plur_of(&serve, sid));
    }
    let report = report_of(&serve, sid).expect("converged");
    let wal = std::fs::read(dir.path().join("wal-0.log")).unwrap();
    let snap = std::fs::read(dir.path().join("snap-0.snap")).ok();
    Reference {
        plur,
        truths: report.result.truths.clone(),
        posteriors: posterior_bits(&report.result.posteriors),
        wal,
        snap,
    }
}

const KIND_HEADER: u8 = 0x01;
const KIND_BATCH: u8 = 0x02;
const KIND_CONVERGE: u8 = 0x03;

/// Walk the frame structure of a WAL: `(end_offset, kind)` per frame.
fn frames_of(bytes: &[u8]) -> Vec<(usize, u8)> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        frames.push((pos + 8 + len, bytes[pos + 8]));
        pos += 8 + len;
    }
    frames
}

// ---------------------------------------------------------------------------
// 1. Kill at every frame boundary → bit-identical recovery

#[test]
fn kill_at_every_frame_boundary_recovers_bit_identically() {
    for (method, dataset) in [
        (Method::Ds, PaperDataset::DProduct),
        (Method::Ds, PaperDataset::DPosSent),
        (Method::Zc, PaperDataset::DProduct),
        (Method::Zc, PaperDataset::DPosSent),
    ] {
        // 5 batches at snapshot cadence 2: the last converge (5) is never
        // covered by a snapshot, so every recovery that replays the full
        // log re-runs at least one converge and has a `last_report`.
        let (config, batches) = session_batches(method, dataset, 5, 11);
        let reference = run_reference(&config, &batches, 2);
        let frames = frames_of(&reference.wal);
        // One batch per tick: header + (batch, converge) per batch.
        assert_eq!(frames.len(), 1 + 2 * batches.len());

        for kill in 1..=frames.len() {
            let prefix = &frames[..kill];
            let ingested = prefix.iter().filter(|&&(_, k)| k == KIND_BATCH).count();
            let converged = prefix.iter().filter(|&&(_, k)| k == KIND_CONVERGE).count();

            // Materialise the crash: the WAL cut at this frame boundary,
            // the snapshot file as the full run left it (possibly "from
            // the future" relative to the cut — recovery must detect that
            // and fall back to pure replay).
            let dir = TempDir::new("kill");
            std::fs::write(
                dir.path().join("wal-0.log"),
                &reference.wal[..prefix.last().unwrap().0],
            )
            .unwrap();
            if let Some(snap) = &reference.snap {
                std::fs::write(dir.path().join("snap-0.snap"), snap).unwrap();
            }

            let (serve, report) =
                CrowdServe::recover(durable_config(dir.path(), 2)).expect("recovery succeeds");
            assert_eq!(report.sessions_recovered, 1, "kill={kill}");
            assert_eq!(report.sessions_skipped, 0);
            assert_eq!(report.torn_tails_truncated, 0, "cut at a frame boundary");
            let sid = serve.sessions()[0];

            // Immediately after recovery the engine holds exactly the
            // converged prefix; logged-but-unconverged batches are queued.
            assert_eq!(
                plur_of(&serve, sid),
                reference.plur[converged],
                "{method:?}/{dataset:?} kill={kill}: post-recovery plurality"
            );
            let stats = serve.truth(sid).unwrap().stats.clone();
            let tail_answers: usize = batches[converged..ingested].iter().map(Vec::len).sum();
            assert_eq!(serve.stats().queued_answers, tail_answers);
            assert_eq!(
                stats.answers_seen,
                batches[..converged].iter().map(Vec::len).sum::<usize>()
            );

            // Continue the remaining schedule: first absorb any requeued
            // tail, then one submit + tick per outstanding batch.
            if ingested > converged {
                let tick = serve.drain_tick();
                assert!(tick.errors.is_empty(), "{:?}", tick.errors);
            }
            for batch in &batches[ingested..] {
                serve.submit(sid, batch.clone()).unwrap();
                let tick = serve.drain_tick();
                assert!(tick.errors.is_empty(), "{:?}", tick.errors);
            }
            assert_eq!(plur_of(&serve, sid), *reference.plur.last().unwrap());
            let report = report_of(&serve, sid).expect("converged");
            assert_eq!(
                report.result.truths, reference.truths,
                "{method:?}/{dataset:?} kill={kill}: final truths"
            );
            assert_eq!(
                posterior_bits(&report.result.posteriors),
                reference.posteriors,
                "{method:?}/{dataset:?} kill={kill}: final posteriors"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Torn tails: every byte offset, every single-byte corruption

/// Small synthetic session: distinct batch sizes so every prefix has a
/// unique answer count; Mv so the hundreds of replays are cheap.
fn tiny_session() -> (StreamConfig, Vec<Vec<AnswerRecord>>) {
    let config = StreamConfig::new(Method::Mv, TaskType::DecisionMaking, 6, 4);
    let mut batches = Vec::new();
    let mut k = 0usize;
    for size in [5usize, 4, 6] {
        batches.push(
            (0..size)
                .map(|i| {
                    let j = k + i; // unique (task, worker) per record: j < 24
                    AnswerRecord {
                        task: j % 6,
                        worker: (j / 6) % 4,
                        answer: Answer::Label((j / 3 % 2) as u8),
                    }
                })
                .collect(),
        );
        k += size;
    }
    (config, batches)
}

/// Per-truncation expectations, derived from the frame structure of the
/// full WAL.
fn expect_for_prefix(
    frames: &[(usize, u8)],
    batches: &[Vec<AnswerRecord>],
    valid_bytes: usize,
) -> Option<(usize, usize)> {
    let complete = frames.iter().take_while(|&&(end, _)| end <= valid_bytes);
    let mut saw_header = false;
    let mut ingested = 0usize;
    let mut converged = 0usize;
    for &(_, kind) in complete {
        match kind {
            KIND_HEADER => saw_header = true,
            KIND_BATCH => ingested += 1,
            KIND_CONVERGE => converged += 1,
            _ => unreachable!(),
        }
    }
    if !saw_header {
        return None;
    }
    let engine_answers = batches[..converged].iter().map(Vec::len).sum();
    let queued = batches[converged..ingested].iter().map(Vec::len).sum();
    Some((engine_answers, queued))
}

#[test]
fn truncation_at_every_byte_offset_recovers_longest_valid_prefix() {
    let (config, batches) = tiny_session();
    let reference = run_reference(&config, &batches, 0);
    let frames = frames_of(&reference.wal);
    let dir = TempDir::new("torn");
    let wal_path = dir.path().join("wal-0.log");

    for cut in 0..=reference.wal.len() {
        std::fs::write(&wal_path, &reference.wal[..cut]).unwrap();
        let (serve, report) = CrowdServe::recover(durable_config(dir.path(), 0))
            .unwrap_or_else(|e| panic!("cut={cut}: recover errored: {e}"));
        match expect_for_prefix(&frames, &batches, cut) {
            None => {
                // Not even a header survived: the session is skipped, the
                // service itself still comes up.
                assert_eq!(report.sessions_recovered, 0, "cut={cut}");
                assert_eq!(report.sessions_skipped, 1, "cut={cut}");
                assert_eq!(report.skipped.len(), 1);
                assert!(report.per_session.is_empty(), "cut={cut}");
            }
            Some((engine_answers, queued)) => {
                assert_eq!(report.sessions_recovered, 1, "cut={cut}");
                assert_eq!(report.sessions_skipped, 0, "cut={cut}");
                let at_boundary = frames.iter().any(|&(end, _)| end == cut);
                assert_eq!(
                    report.torn_tails_truncated,
                    usize::from(!at_boundary),
                    "cut={cut}"
                );
                assert_eq!(report.answers_requeued, queued, "cut={cut}");
                // Per-session accounting matches the frame structure of
                // the WAL bytes actually on disk: every complete frame
                // within the cut counts, torn tail bytes do not.
                let disk = std::fs::read(&wal_path).unwrap();
                let valid = frames_of(&disk);
                assert_eq!(report.per_session.len(), 1, "cut={cut}");
                let counts = &report.per_session[0];
                assert_eq!(counts.wal_frames, valid.len() as u64, "cut={cut}");
                assert_eq!(
                    counts.wal_bytes,
                    valid.last().map_or(0, |&(end, _)| end) as u64,
                    "cut={cut}"
                );
                let converges = valid.iter().filter(|&&(_, k)| k == KIND_CONVERGE).count();
                assert_eq!(counts.converges_replayed, converges as u64, "cut={cut}");
                assert_eq!(counts.answers_requeued, queued, "cut={cut}");
                let sid = serve.sessions()[0];
                assert_eq!(
                    serve.truth(sid).unwrap().stats.answers_seen,
                    engine_answers,
                    "cut={cut}"
                );
                // The recovered service is live: the requeued tail (if
                // any) drains, and new submits append to the healed log.
                serve.drain_tick();
                assert_eq!(
                    serve.truth(sid).unwrap().stats.answers_seen,
                    engine_answers + queued,
                    "cut={cut}"
                );
                serve
                    .submit(
                        sid,
                        vec![AnswerRecord {
                            task: 0,
                            worker: 0,
                            answer: Answer::Label(1),
                        }],
                    )
                    .unwrap();
            }
        }
    }
}

proptest! {
    #[test]
    fn single_byte_corruption_never_breaks_recovery(
        offset_sel in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let (config, batches) = tiny_session();
        let reference = run_reference(&config, &batches, 0);
        let frames = frames_of(&reference.wal);
        let offset = offset_sel % reference.wal.len();
        let mut bytes = reference.wal.clone();
        bytes[offset] ^= flip;

        let dir = TempDir::new("flip");
        std::fs::write(dir.path().join("wal-0.log"), &bytes).unwrap();
        let (serve, report) = CrowdServe::recover(durable_config(dir.path(), 0))
            .expect("recover never errors on corruption");
        prop_assert_eq!(report.sessions_recovered + report.sessions_skipped, 1);

        // The corrupted frame ends the valid prefix; everything before it
        // survives byte-for-byte.
        let mut victim_start = 0usize;
        for &(end, _) in &frames {
            if offset < end {
                break;
            }
            victim_start = end;
        }
        match expect_for_prefix(&frames, &batches, victim_start) {
            None => prop_assert_eq!(report.sessions_skipped, 1),
            Some((engine_answers, queued)) => {
                prop_assert_eq!(report.sessions_recovered, 1);
                let sid = serve.sessions()[0];
                prop_assert_eq!(
                    serve.truth(sid).unwrap().stats.answers_seen,
                    engine_answers
                );
                prop_assert_eq!(report.answers_requeued, queued);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Snapshots: fast path ≡ replay path; corruption falls back

#[test]
fn intact_snapshot_fast_path_is_bit_identical_to_full_replay() {
    // 5 batches, snapshot every 2 converges → the snapshot covers
    // converges 1-4 and converge 5 is replayed on top of it.
    let (config, batches) = session_batches(Method::Ds, PaperDataset::DProduct, 5, 3);
    let reference = run_reference(&config, &batches, 2);
    assert!(reference.snap.is_some(), "cadence produced a snapshot");

    let with_snap = TempDir::new("snap");
    let without_snap = TempDir::new("nosnap");
    for dir in [&with_snap, &without_snap] {
        std::fs::write(dir.path().join("wal-0.log"), &reference.wal).unwrap();
    }
    std::fs::write(
        with_snap.path().join("snap-0.snap"),
        reference.snap.as_ref().unwrap(),
    )
    .unwrap();

    let (fast, fast_report) = CrowdServe::recover(durable_config(with_snap.path(), 2)).unwrap();
    let (slow, slow_report) = CrowdServe::recover(durable_config(without_snap.path(), 2)).unwrap();
    assert_eq!(fast_report.snapshots_used, 1);
    assert_eq!(fast_report.snapshot_fallbacks, 0);
    assert_eq!(slow_report.snapshots_used, 0);
    assert!(
        fast_report.converges_replayed < slow_report.converges_replayed,
        "the snapshot skipped EM work ({} vs {})",
        fast_report.converges_replayed,
        slow_report.converges_replayed
    );
    let sid = fast.sessions()[0];
    assert_eq!(
        plur_of(&fast, sid),
        plur_of(&slow, sid),
        "snapshot path ≡ replay path"
    );
    assert_eq!(plur_of(&fast, sid), *reference.plur.last().unwrap());
    for serve in [&fast, &slow] {
        let report = report_of(serve, sid).expect("converge 5 replayed");
        assert_eq!(report.result.truths, reference.truths);
        assert_eq!(
            posterior_bits(&report.result.posteriors),
            reference.posteriors
        );
    }
}

#[test]
fn corrupt_snapshot_falls_back_to_full_wal_replay() {
    let (config, batches) = session_batches(Method::Ds, PaperDataset::DProduct, 5, 3);
    let reference = run_reference(&config, &batches, 2);
    let mut snap = reference.snap.clone().expect("cadence produced a snapshot");
    let mid = snap.len() / 2;
    snap[mid] ^= 0xA5;

    let dir = TempDir::new("badsnap");
    std::fs::write(dir.path().join("wal-0.log"), &reference.wal).unwrap();
    std::fs::write(dir.path().join("snap-0.snap"), &snap).unwrap();

    let (serve, report) = CrowdServe::recover(durable_config(dir.path(), 2)).unwrap();
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(report.snapshots_used, 0);
    assert_eq!(report.snapshot_fallbacks, 1, "corruption detected");
    let sid = serve.sessions()[0];
    let last = report_of(&serve, sid).expect("full replay converged");
    assert_eq!(last.result.truths, reference.truths);
    assert_eq!(
        posterior_bits(&last.result.posteriors),
        reference.posteriors
    );
}

#[test]
fn recovery_is_idempotent() {
    let (config, batches) = session_batches(Method::Ds, PaperDataset::DProduct, 4, 5);
    let reference = run_reference(&config, &batches, 2);
    let dir = TempDir::new("idem");
    std::fs::write(dir.path().join("wal-0.log"), &reference.wal).unwrap();
    if let Some(snap) = &reference.snap {
        std::fs::write(dir.path().join("snap-0.snap"), snap).unwrap();
    }
    let mut pluralities = Vec::new();
    for _ in 0..2 {
        let (serve, report) = CrowdServe::recover(durable_config(dir.path(), 2)).unwrap();
        assert_eq!(report.sessions_recovered, 1);
        pluralities.push(plur_of(&serve, serve.sessions()[0]));
    }
    assert_eq!(
        pluralities[0], pluralities[1],
        "recover · recover ≡ recover"
    );
}

// ---------------------------------------------------------------------------
// 4. Graceful degradation

#[test]
fn poisoned_session_auto_restarts_from_checkpoint_bit_identically() {
    let (config, batches) = session_batches(Method::Ds, PaperDataset::DProduct, 5, 7);
    let reference = run_reference(&config, &batches, 2);

    let dir = TempDir::new("restart");
    let mut cfg = durable_config(dir.path(), 2);
    // Converge attempt #2 (the third tick's converge) panics; the retry
    // (attempt #3) draws a fresh decision and proceeds.
    cfg.fault = FaultPlan::seeded(9)
        .schedule(
            FaultSite::Converge {
                session: 0,
                index: 2,
            },
            FaultKind::Panic,
        )
        .build();
    let serve = CrowdServe::new(cfg).unwrap();
    let sid = serve.create_session(config).unwrap();

    for (t, batch) in batches.iter().enumerate() {
        serve.submit(sid, batch.clone()).unwrap();
        let tick = serve.drain_tick();
        if t == 2 {
            // The scheduled panic fires: the session is poisoned, reads
            // fail typed…
            assert_eq!(tick.poisoned, vec![sid]);
            assert!(serve.truth(sid).unwrap().state.is_stale());
            // …and the next tick restarts it from checkpoint + WAL and
            // re-runs the interrupted converge, landing exactly where the
            // clean run was after its own tick 3.
            let tick = serve.drain_tick();
            assert_eq!(tick.sessions_restarted, 1);
            assert!(tick.poisoned.is_empty());
            assert!(tick.errors.is_empty(), "{:?}", tick.errors);
            assert_eq!(plur_of(&serve, sid), reference.plur[t + 1]);
            assert_eq!(serve.truth(sid).unwrap().stats.restarts, 1);
        } else {
            assert!(tick.poisoned.is_empty());
            assert_eq!(plur_of(&serve, sid), reference.plur[t + 1]);
        }
    }
    let report = report_of(&serve, sid).expect("converged");
    assert_eq!(report.result.truths, reference.truths);
    assert_eq!(
        posterior_bits(&report.result.posteriors),
        reference.posteriors
    );
}

#[test]
fn restart_budget_exhausts_into_stable_poisoned_state() {
    let dir = TempDir::new("exhaust");
    let mut cfg = durable_config(dir.path(), 2);
    if let Some(dur) = cfg.durability.as_mut() {
        dur.max_session_restarts = 2;
    }
    // Every converge attempt panics.
    cfg.fault = FaultPlan::seeded(3).converge_panic_rate(1.0).build();
    let serve = CrowdServe::new(cfg).unwrap();
    let (config, batches) = tiny_session();
    let sid = serve.create_session(config).unwrap();
    serve.submit(sid, batches[0].clone()).unwrap();

    let tick = serve.drain_tick();
    assert_eq!(tick.poisoned, vec![sid]);
    let mut restarts_seen = 0;
    for _ in 0..4 {
        restarts_seen += serve.drain_tick().sessions_restarted;
    }
    assert_eq!(restarts_seen, 2, "restart budget respected");
    assert_eq!(serve.stats().poisoned_sessions, 1, "then it stays poisoned");
    assert!(matches!(
        serve.submit(sid, batches[1].clone()),
        Err(ServeError::SessionPoisoned(_))
    ));
    // Eviction still reclaims the slot and reports the cause.
    let evicted = serve.evict(sid).unwrap();
    assert!(evicted.poisoned.expect("cause kept").contains("injected"));
}

#[test]
fn wedged_wal_fails_submits_typed_while_reads_keep_serving() {
    let dir = TempDir::new("wedge");
    let mut cfg = durable_config(dir.path(), 0);
    // Frame appends: header=0, first batch=1, its converge frame=2. An
    // injected error on the converge frame wedges the log (the engine
    // converged but the log missed it — later replays would diverge).
    cfg.fault = FaultPlan::seeded(4)
        .schedule(
            FaultSite::WalAppend {
                session: 0,
                index: 2,
            },
            FaultKind::Error,
        )
        .build();
    let serve = CrowdServe::new(cfg).unwrap();
    let (config, batches) = tiny_session();
    let sid = serve.create_session(config).unwrap();
    serve.submit(sid, batches[0].clone()).unwrap();
    let tick = serve.drain_tick();
    assert_eq!(tick.errors.len(), 1);
    assert!(tick.errors[0].1.contains("wedged"), "{}", tick.errors[0].1);

    // Reads still serve the converged state…
    assert_eq!(plur_of(&serve, sid).len(), 6);
    assert!(report_of(&serve, sid).is_some());
    // …but submits refuse typed until restart/evict.
    match serve.submit(sid, batches[1].clone()).unwrap_err() {
        ServeError::Durability { session, detail } => {
            assert_eq!(session, Some(sid));
            assert!(detail.contains("wedged"), "{detail}");
        }
        other => panic!("expected Durability, got {other}"),
    }
    let evicted = serve.evict(sid).unwrap();
    assert_eq!(evicted.answers_seen, batches[0].len());
}

#[test]
fn relaxed_fsync_policies_still_recover_after_clean_process_exit() {
    for policy in [FsyncPolicy::EveryN(3), FsyncPolicy::Never] {
        let dir = TempDir::new("fsync");
        let mut cfg = durable_config(dir.path(), 2);
        if let Some(dur) = cfg.durability.as_mut() {
            dur.fsync = policy;
        }
        let (config, batches) = tiny_session();
        {
            let serve = CrowdServe::new(cfg.clone()).unwrap();
            let sid = serve.create_session(config).unwrap();
            for batch in &batches {
                serve.submit(sid, batch.clone()).unwrap();
                serve.drain_tick();
            }
        } // drop = clean exit: the OS has the unsynced bytes
        let (serve, report) = CrowdServe::recover(cfg).unwrap();
        assert_eq!(report.sessions_recovered, 1, "{policy:?}");
        let sid = serve.sessions()[0];
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(serve.truth(sid).unwrap().stats.answers_seen, total);
    }
}

#[test]
fn eviction_retires_durable_state() {
    let dir = TempDir::new("evict");
    let serve = CrowdServe::new(durable_config(dir.path(), 1)).unwrap();
    let (config, batches) = tiny_session();
    let sid = serve.create_session(config.clone()).unwrap();
    let sibling = serve.create_session(config.clone()).unwrap();
    serve.submit(sid, batches[0].clone()).unwrap();
    serve.submit(sibling, batches[1].clone()).unwrap();
    serve.drain_tick();
    assert!(dir.path().join("wal-0.log").exists());
    serve.evict(sid).unwrap();
    assert!(!dir.path().join("wal-0.log").exists(), "wal deleted");
    assert!(!dir.path().join("snap-0.snap").exists(), "snapshot deleted");
    // A recovery after the eviction resurrects only the sibling, and new
    // session ids continue past every id the directory has ever seen.
    drop(serve);
    let (serve, report) = CrowdServe::recover(durable_config(dir.path(), 1)).unwrap();
    assert_eq!(report.sessions_recovered, 1);
    assert_eq!(serve.sessions(), vec![sibling]);
    let fresh = serve.create_session(config).unwrap();
    assert_ne!(fresh, sid);
    assert_ne!(fresh, sibling);
}
