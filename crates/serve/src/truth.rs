//! Published truth snapshots — the wait-free read path.
//!
//! The write path (drain ticks) and the read path (polling clients) meet
//! at a single word: each session owns a [`Published<TruthSnapshot>`]
//! cell whose current value is swapped atomically at the end of every
//! tick that touched the session. Readers load the pointer and bump the
//! snapshot's refcount — they never take the session slot lock, so a
//! read completes in sub-microsecond time even while that session's
//! converge is running (measured by `crowd-serve-bench --mode mixed`).
//!
//! ## Memory reclamation
//!
//! The cell is a hand-rolled arc-swap over `AtomicPtr` +
//! [`Arc::into_raw`], std-only like the rest of the workspace. The
//! classic hazard is the window between a reader's pointer load and its
//! refcount increment: a concurrent publisher that dropped the old
//! `Arc` immediately would free the value out from under the reader.
//! Reclamation is therefore epoch-based:
//!
//! - Every reader handle owns a **hazard slot**. A read stamps the
//!   current publish epoch into its slot (SeqCst), loads the pointer,
//!   increments the strong count, and clears the slot.
//! - A publisher swaps the new pointer in, tags the old one with the
//!   new epoch on a retire list, bumps the epoch, then scans the slots:
//!   a retired entry with epoch `R` is freed only when every active
//!   stamp is `≥ R` (vacuously, when no stamp is active).
//!
//! Soundness (all operations SeqCst, so they form one total order): a
//! reader that could still load the retired pointer must have loaded
//! `ptr` *before* the swap at epoch `R`, hence stamped *before* the
//! publisher's scan, hence is visible to the scan with a stamp `< R` —
//! so the entry is retained. Conversely a reader that stamps after the
//! scan also loads after the swap and gets the new pointer. A stamp is
//! cleared only after the increment (the clear is a release store), so
//! a scan that observes an idle slot observes the increment too. Stale
//! stamps are conservative: they can only delay reclamation, never
//! allow a premature free. A reader merely *holding* a snapshot `Arc`
//! pins only that snapshot (plain refcounting); the hazard window
//! itself is a few instructions.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, Weak};

use crowd_stream::StreamReport;

use crate::obs;
use crate::service::{SessionId, SessionStats};
use crate::shard::lock;

/// How fresh a [`TruthSnapshot`] is. Reads never fail mid-poll — they
/// degrade to a typed state instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotState {
    /// The session is healthy; the snapshot reflects its state at the
    /// end of the tick that published it.
    Live,
    /// The session was poisoned by a converge panic after this
    /// snapshot's content was built: the fields are the last good state
    /// (the engine itself is not trusted after a panic), only
    /// [`TruthSnapshot::stats`] is current. The session may return to
    /// [`SnapshotState::Live`] via a checkpoint auto-restart.
    SnapshotStale {
        /// The poison (panic) message.
        reason: String,
    },
    /// The session was evicted; this is its final state and no further
    /// epochs will be published. Service-level lookups return
    /// [`ServeError::UnknownSession`](crate::ServeError::UnknownSession)
    /// instead, but a [`TruthReader`] held across the eviction keeps
    /// reading this terminal snapshot.
    SessionGone,
}

impl SnapshotState {
    /// `true` for [`SnapshotState::Live`].
    pub fn is_live(&self) -> bool {
        matches!(self, Self::Live)
    }

    /// `true` for [`SnapshotState::SnapshotStale`].
    pub fn is_stale(&self) -> bool {
        matches!(self, Self::SnapshotStale { .. })
    }

    /// `true` for [`SnapshotState::SessionGone`].
    pub fn is_gone(&self) -> bool {
        matches!(self, Self::SessionGone)
    }
}

/// An immutable, internally-consistent view of one session's truth
/// state, published at the end of the drain tick (or lifecycle event)
/// that produced it. Every field was read under the same slot lock —
/// unlike the deprecated per-field getters, `plurality`, `report`, and
/// `stats` can never disagree about which tick they describe.
#[derive(Debug, Clone)]
pub struct TruthSnapshot {
    /// The session this snapshot describes.
    pub session: SessionId,
    /// Publish epoch: strictly increasing per session, starting at 1
    /// when the session is created. With durability on, recovery seeds
    /// the counter from the durable ingest/converge totals so epochs
    /// keep increasing across a crash (see ARCHITECTURE.md § read path).
    pub epoch: u64,
    /// Freshness: live, stale (poisoned), or evicted.
    pub state: SnapshotState,
    /// Answer batches the engine has absorbed.
    pub cum_batches: u64,
    /// Live per-task plurality labels (`O(|V|)` off the delta views at
    /// publish time — includes ingested-but-unconverged answers).
    pub plurality: Vec<Option<u8>>,
    /// The most recent converge output (`None` before the first
    /// converge). `result.converged` distinguishes a fixed point from a
    /// budget-sliced intermediate.
    pub report: Option<StreamReport>,
    /// Session counters, from the same instant as every other field.
    pub stats: SessionStats,
}

impl TruthSnapshot {
    /// The latest converged per-task posteriors, when the method
    /// computes them (`None` before the first converge).
    pub fn posteriors(&self) -> Option<&[Vec<f64>]> {
        self.report
            .as_ref()
            .and_then(|r| r.result.posteriors.as_deref())
    }

    /// Whether the last converge met the convergence criterion.
    pub fn converged(&self) -> bool {
        self.report.as_ref().is_some_and(|r| r.result.converged)
    }
}

/// A reader's hazard slot: 0 when idle, the stamped epoch while a read
/// is between its pointer load and its refcount increment.
#[derive(Default)]
pub(crate) struct ReadSlot {
    pub(crate) stamp: AtomicU64,
}

/// A value retired by a publish: freed once no active stamp is below
/// `epoch` (the epoch whose swap displaced it).
struct Retired<T> {
    epoch: u64,
    ptr: *mut T,
}

struct WriterState<T> {
    retired: Vec<Retired<T>>,
}

/// Number of shared anonymous hazard slots for slot-less reads
/// ([`Published::read`]). More than this many *simultaneous* slot-less
/// readers of one cell fall back to a brief writer-mutex hold (still
/// correct, no longer wait-free) — dedicated [`TruthReader`] handles
/// never contend here.
const ANON_SLOTS: usize = 8;

/// A published immutable value behind an atomic pointer swap: wait-free
/// reads, serialized writes, epoch-based reclamation (module docs).
pub(crate) struct Published<T> {
    /// The current value, from [`Arc::into_raw`]. Never null.
    ptr: AtomicPtr<T>,
    /// The epoch of the current value.
    epoch: AtomicU64,
    /// Serializes publishers; owns the retire list. Also taken by the
    /// lock-fallback read path to pin the current pointer.
    writer: Mutex<WriterState<T>>,
    /// Registered reader slots (locked for registration and the
    /// publisher's scan only — never on the read path).
    slots: Mutex<Vec<Weak<ReadSlot>>>,
    /// Shared slots for slot-less reads.
    anon: Vec<Arc<ReadSlot>>,
}

// SAFETY: `ptr`/`retired` own `Arc<T>`s disguised as raw pointers; the
// protocol above never produces an unsynchronized access to `T`.
unsafe impl<T: Send + Sync> Send for Published<T> {}
unsafe impl<T: Send + Sync> Sync for Published<T> {}

impl<T> Published<T> {
    /// Create a cell whose first value has epoch `epoch_base + 1` (the
    /// closure receives that epoch, so values that embed their own
    /// epoch can). A cell is never empty: readers always see a value.
    pub fn new(epoch_base: u64, initial: impl FnOnce(u64) -> T) -> Self {
        let epoch = epoch_base + 1;
        let ptr = Arc::into_raw(Arc::new(initial(epoch))).cast_mut();
        Self {
            ptr: AtomicPtr::new(ptr),
            epoch: AtomicU64::new(epoch),
            writer: Mutex::new(WriterState {
                retired: Vec::new(),
            }),
            slots: Mutex::new(Vec::new()),
            anon: (0..ANON_SLOTS).map(|_| Arc::default()).collect(),
        }
    }

    /// The current publish epoch (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Publish the value built by `f`, which receives the previous
    /// value and the new epoch. Returns the new epoch. Publishers
    /// serialize on the writer mutex; readers are never blocked.
    pub fn publish_with(&self, f: impl FnOnce(&T, u64) -> T) -> u64 {
        let mut w = lock(&self.writer);
        let epoch = self.epoch.load(SeqCst) + 1;
        // SAFETY: the current pointer is valid and cannot be retired or
        // freed while the writer mutex is held.
        let prior = unsafe { &*self.ptr.load(SeqCst) };
        let next = Arc::into_raw(Arc::new(f(prior, epoch))).cast_mut();
        let old = self.ptr.swap(next, SeqCst);
        self.epoch.store(epoch, SeqCst);
        w.retired.push(Retired { epoch, ptr: old });
        self.reclaim(&mut w);
        epoch
    }

    /// Free every retired value no in-flight read can still touch.
    fn reclaim(&self, w: &mut WriterState<T>) {
        let mut min_active = u64::MAX;
        {
            let mut slots = lock(&self.slots);
            slots.retain(|weak| {
                let Some(slot) = weak.upgrade() else {
                    return false; // the reader handle is gone
                };
                let stamp = slot.stamp.load(SeqCst);
                if stamp != 0 {
                    min_active = min_active.min(stamp);
                }
                true
            });
        }
        for slot in &self.anon {
            let stamp = slot.stamp.load(SeqCst);
            if stamp != 0 {
                min_active = min_active.min(stamp);
            }
        }
        let mut freed = 0u64;
        w.retired.retain(|r| {
            if r.epoch <= min_active {
                // SAFETY: the pointer came from `Arc::into_raw` at
                // publish time and this is the writer's single drop of
                // it; the epoch argument above rules out in-flight
                // readers still resolving it.
                drop(unsafe { Arc::from_raw(r.ptr) });
                freed += 1;
                false
            } else {
                true
            }
        });
        if freed > 0 {
            obs::truth_retired_freed().add(freed);
        }
    }

    /// Register a dedicated hazard slot (one brief registry-mutex
    /// hold — not on the read path).
    pub fn register_slot(&self) -> Arc<ReadSlot> {
        let slot = Arc::new(ReadSlot::default());
        lock(&self.slots).push(Arc::downgrade(&slot));
        slot
    }

    /// Wait-free read through a dedicated slot. Falls back to
    /// [`read_locked`](Self::read_locked) only when the *same* slot is
    /// concurrently mid-read (two threads sharing one handle — clone
    /// the handle per thread to stay wait-free).
    pub fn read_with(&self, slot: &ReadSlot) -> Arc<T> {
        let e = self.epoch.load(SeqCst);
        if slot.stamp.compare_exchange(0, e, SeqCst, SeqCst).is_ok() {
            let arc = self.load_current();
            slot.stamp.store(0, SeqCst);
            arc
        } else {
            self.read_locked()
        }
    }

    /// Slot-less read: claims one of the shared anonymous slots, or
    /// falls back to the writer mutex if all are mid-read.
    pub fn read(&self) -> Arc<T> {
        let e = self.epoch.load(SeqCst);
        for slot in &self.anon {
            if slot.stamp.compare_exchange(0, e, SeqCst, SeqCst).is_ok() {
                let arc = self.load_current();
                slot.stamp.store(0, SeqCst);
                return arc;
            }
        }
        self.read_locked()
    }

    /// Load the current value while protected by a stamped slot.
    fn load_current(&self) -> Arc<T> {
        let p = self.ptr.load(SeqCst);
        // SAFETY: our stamp (sequenced before this load) keeps any
        // publisher from freeing `p` until the slot clears, and the
        // pointer came from `Arc::into_raw` with the strong count we
        // are about to claim.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }

    /// Correct-but-blocking read: holding the writer mutex excludes any
    /// concurrent swap or reclaim, pinning the current pointer.
    fn read_locked(&self) -> Arc<T> {
        let _w = lock(&self.writer);
        let p = self.ptr.load(SeqCst);
        // SAFETY: as in `load_current`, with the writer mutex as the pin.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }
}

impl<T> Drop for Published<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; these are the writer's outstanding
        // `Arc::into_raw` references (current value + retire list).
        unsafe {
            drop(Arc::from_raw(*self.ptr.get_mut()));
        }
        let w = self
            .writer
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for r in w.retired.drain(..) {
            // SAFETY: as above.
            unsafe {
                drop(Arc::from_raw(r.ptr));
            }
        }
    }
}

/// A clonable, `Send + Sync` handle for polling one session's published
/// [`TruthSnapshot`] — the redesigned read API (see
/// [`CrowdServe::reader`](crate::CrowdServe::reader)).
///
/// [`snapshot`](Self::snapshot) is wait-free: it never touches the
/// session slot lock (or any other service lock), so it completes in
/// sub-microsecond time even while the session's own converge is
/// running. The handle stays valid across poisoning, checkpoint
/// restarts, and eviction — reads degrade to
/// [`SnapshotState::SnapshotStale`] / [`SnapshotState::SessionGone`]
/// instead of erroring mid-poll.
///
/// Each handle owns its hazard slot; share a handle across threads by
/// cloning it (a clone registers a fresh slot), not by wrapping one in
/// a lock — two threads racing on the *same* handle stay correct but
/// lose wait-freedom.
pub struct TruthReader {
    session: SessionId,
    cell: Arc<Published<TruthSnapshot>>,
    slot: Arc<ReadSlot>,
}

impl TruthReader {
    pub(crate) fn new(session: SessionId, cell: Arc<Published<TruthSnapshot>>) -> Self {
        let slot = cell.register_slot();
        Self {
            session,
            cell,
            slot,
        }
    }

    /// The session this handle reads.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The epoch of the snapshot the next [`snapshot`](Self::snapshot)
    /// call would return — one atomic load, for change detection
    /// without taking a snapshot reference.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The current published snapshot. Wait-free; never blocks behind
    /// ingest or converge work.
    pub fn snapshot(&self) -> Arc<TruthSnapshot> {
        let timer = obs::truth_read_seconds().start_timer();
        let snap = self.cell.read_with(&self.slot);
        timer.stop();
        obs::truth_reads().inc();
        snap
    }
}

impl Clone for TruthReader {
    fn clone(&self) -> Self {
        Self::new(self.session, Arc::clone(&self.cell))
    }
}

impl std::fmt::Debug for TruthReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TruthReader")
            .field("session", &self.session)
            .field("epoch", &self.cell.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn handle_types_are_send_sync() {
        assert_send_sync::<TruthReader>();
        assert_send_sync::<Arc<TruthSnapshot>>();
        assert_send_sync::<Published<u64>>();
    }

    #[test]
    fn publish_and_read_roundtrip() {
        let cell: Published<(u64, String)> = Published::new(0, |e| (e, "init".to_string()));
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.read().0, 1);
        let e = cell.publish_with(|prior, epoch| {
            assert_eq!(prior.0, 1);
            (epoch, format!("{} then {epoch}", prior.1))
        });
        assert_eq!(e, 2);
        let v = cell.read();
        assert_eq!(v.0, 2);
        assert_eq!(v.1, "init then 2");
    }

    #[test]
    fn recovery_seeded_epochs_start_above_base() {
        let cell: Published<u64> = Published::new(41, |e| e);
        assert_eq!(cell.epoch(), 42);
        assert_eq!(cell.publish_with(|_, e| e), 43);
    }

    /// Payload that counts its drops — the reclamation ledger.
    struct Counted {
        epoch: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_values_are_reclaimed_not_leaked() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell: Published<Counted> = Published::new(0, |e| Counted {
            epoch: e,
            drops: Arc::clone(&drops),
        });
        for _ in 0..100 {
            cell.publish_with(|_, e| Counted {
                epoch: e,
                drops: Arc::clone(&drops),
            });
        }
        // With no readers active, each publish frees its predecessor.
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        assert_eq!(cell.read().epoch, 101);
        drop(cell);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            101,
            "cell drop frees the rest"
        );
    }

    #[test]
    fn active_stamp_pins_the_current_value() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell: Published<Counted> = Published::new(0, |e| Counted {
            epoch: e,
            drops: Arc::clone(&drops),
        });
        let slot = cell.register_slot();
        // Freeze a reader mid-read: stamped, pointer not yet resolved.
        slot.stamp.store(cell.epoch(), SeqCst);
        cell.publish_with(|_, e| Counted {
            epoch: e,
            drops: Arc::clone(&drops),
        });
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "epoch-1 value must survive while a stamp at epoch 1 is active"
        );
        slot.stamp.store(0, SeqCst);
        cell.publish_with(|_, e| Counted {
            epoch: e,
            drops: Arc::clone(&drops),
        });
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "both retirees freed once idle"
        );
    }

    #[test]
    fn busy_slot_falls_back_to_locked_read() {
        let cell: Published<u64> = Published::new(0, |e| e);
        let slot = cell.register_slot();
        slot.stamp.store(cell.epoch(), SeqCst); // simulate a concurrent read
        assert_eq!(
            *cell.read_with(&slot),
            1,
            "fallback still returns the value"
        );
        slot.stamp.store(0, SeqCst);
    }

    #[test]
    fn concurrent_readers_see_consistent_monotonic_epochs() {
        // Writer publishes (epoch, checksum) pairs; readers must never
        // see a torn pair or an epoch that goes backwards.
        let cell: Arc<Published<(u64, u64)>> = Arc::new(Published::new(0, |e| (e, e ^ 0xABCD)));
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let slot = cell.register_slot();
                    let mut last = 0u64;
                    let mut reads = 0u64;
                    while !done.load(Ordering::SeqCst) {
                        let v = cell.read_with(&slot);
                        assert_eq!(v.1, v.0 ^ 0xABCD, "torn snapshot");
                        assert!(v.0 >= last, "epoch went backwards: {} < {last}", v.0);
                        last = v.0;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for _ in 0..2000 {
            cell.publish_with(|_, e| (e, e ^ 0xABCD));
        }
        done.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(cell.epoch(), 2001);
    }
}
