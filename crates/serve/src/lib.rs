//! # crowd-serve — the multi-session truth-inference service core
//!
//! PR 2's [`StreamEngine`](crowd_stream::StreamEngine) made *one* answer
//! stream incrementally convergeable; this crate serves **many** of them
//! at once — the "sharded engines behind an async ingest front" the
//! ROADMAP names as the step toward serving heavy multi-tenant traffic.
//!
//! Architecture (no new runtime dependency — the executors are the
//! parked threads of [`crowd_core::exec::WorkerPool`]):
//!
//! - **Sessions** are independent streaming-inference universes (one
//!   [`StreamConfig`](crowd_stream::StreamConfig) each), identified by a
//!   [`SessionId`] and pinned to one of N **shards** by id.
//! - **Ingest** is asynchronous in style: [`CrowdServe::submit`] appends
//!   an answer batch to the owning shard's **bounded MPSC queue** and
//!   returns immediately — without running any inference, and without
//!   blocking behind EM. A full queue surfaces as typed
//!   [`ServeError::Backpressure`], never silent loss.
//! - **Drain ticks** ([`CrowdServe::drain_tick`]) fan one job per shard
//!   out onto the worker pool's submit queue. Each shard job drains its
//!   ingest queue into the engines, then re-converges dirty sessions
//!   under a **budget** — an EM-iteration cap per session plus an
//!   optional wall-clock deadline per shard. A session that runs out of
//!   budget resumes from its [`WarmStart`](crowd_core::WarmStart) on the
//!   next tick, so one heavy tenant cannot monopolise a shard.
//! - **Reads are wait-free**: every drain tick publishes an immutable
//!   [`TruthSnapshot`] per touched session behind an atomic pointer
//!   swap, so readers never touch an engine lock — not even the lock of
//!   the session *being read* while its own converge is in flight.
//!   [`CrowdServe::truth`] returns the current snapshot (plurality
//!   labels, converged posteriors, last [`StreamReport`](crowd_stream::StreamReport),
//!   counters — all from the same publish **epoch**);
//!   [`CrowdServe::reader`] hands out a clonable [`TruthReader`] whose
//!   `snapshot()` skips even the session-map lookup. Snapshots carry a
//!   typed [`SnapshotState`] that degrades to `SnapshotStale` /
//!   `SessionGone` across poisoning and eviction instead of erroring.
//!   See ARCHITECTURE.md §read-path for the memory-reclamation
//!   argument.
//! - **Isolation**: a panic inside one session's converge poisons only
//!   that session ([`ServeError::SessionPoisoned`] on later use); sibling
//!   sessions and shards keep serving. [`CrowdServe::evict`] gracefully
//!   retires a session — pending ingest drained, one final converge, all
//!   state returned to the caller.
//!
//! - **Durability** (opt-in via [`ServeConfig::durability`]): every
//!   submit is write-ahead logged to a per-session checksummed WAL
//!   before it is enqueued, warm engine state is checkpointed to
//!   snapshots on a converge cadence, and [`CrowdServe::recover`]
//!   rebuilds every session bit-identically after a crash — tolerating
//!   torn WAL tails (truncated to the last valid frame) and corrupt
//!   snapshots (silent downgrade to full-WAL replay). Poisoned sessions
//!   auto-restart from their last checkpoint, backpressure gains a
//!   deterministic-jitter [`RetryPolicy`], and chaos testing threads a
//!   seeded [`FaultPlan`] through every I/O and converge path. See the
//!   [`durable`] module and ARCHITECTURE.md §durability.
//!
//! Determinism: a session's batches are applied in submission order and
//! each converge is bit-identical at any thread count, so every session's
//! outputs equal a sequential single-session replay of the same batch
//! sequence — property-tested in `tests/multi_session.rs` and measured by
//! `crowd-serve-bench` (`BENCH_serve.json`).
//!
//! ```
//! use crowd_core::Method;
//! use crowd_data::{datasets::PaperDataset, StreamSession};
//! use crowd_serve::{CrowdServe, ServeConfig};
//! use crowd_stream::StreamConfig;
//!
//! let d = PaperDataset::DPosSent.generate(0.05, 7);
//! let serve = CrowdServe::new(ServeConfig::default()).unwrap();
//! let sid = serve
//!     .create_session(StreamConfig::new(
//!         Method::Ds,
//!         d.task_type(),
//!         d.num_tasks(),
//!         d.num_workers(),
//!     ))
//!     .unwrap();
//! for batch in StreamSession::from_dataset(&d, 500) {
//!     serve.submit(sid, batch.records).unwrap();
//!     serve.drain_tick();
//! }
//! let evicted = serve.evict(sid).unwrap();
//! assert!(evicted.final_report.unwrap().result.converged);
//! ```

#![warn(missing_docs)]

pub mod durable;
mod obs;
mod service;
mod shard;
mod truth;

pub use durable::fault::{FaultKind, FaultPlan, FaultPlanBuilder, FaultSite};
pub use durable::{
    DurabilityConfig, FsyncPolicy, RecoveredSessionCounts, RecoveryPhaseTimings, RecoveryReport,
};
pub use service::{
    CrowdServe, EvictedSession, RetryPolicy, ServeConfig, ServeStats, SessionId, SessionStats,
    TickReport,
};
pub use truth::{SnapshotState, TruthReader, TruthSnapshot};

#[cfg(any(test, feature = "fault-inject"))]
pub use service::ConvergeGate;

use crowd_stream::StreamError;
use std::fmt;

/// Errors raised by the service layer.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration was rejected.
    BadConfig {
        /// What was wrong.
        detail: String,
    },
    /// The session id is not (or no longer) registered.
    UnknownSession(SessionId),
    /// The session was poisoned by a panic during an earlier converge and
    /// refuses further work; evict it to reclaim the slot.
    SessionPoisoned(SessionId),
    /// The owning shard's ingest queue is full — backpressure. The batch
    /// was **not** enqueued; retry after a drain tick.
    Backpressure {
        /// The session whose batch was rejected.
        session: SessionId,
        /// The owning shard.
        shard: usize,
        /// Answers currently queued on that shard.
        queued_answers: usize,
        /// The shard's queue capacity in answers.
        capacity: usize,
    },
    /// The underlying streaming engine rejected the session or a record.
    Stream(StreamError),
    /// A durability operation failed: the WAL could not be created,
    /// appended to, or is wedged (an earlier torn/failed write left the
    /// on-disk log behind the in-memory engine). The submit that
    /// triggered it was **not** enqueued.
    Durability {
        /// The affected session (`None` for service-wide failures such
        /// as an unreadable durability directory).
        session: Option<SessionId>,
        /// What failed.
        detail: String,
    },
    /// [`CrowdServe::submit_with_retry`] ran out of attempts; the last
    /// rejection is preserved.
    RetriesExhausted {
        /// The session whose batch kept being rejected.
        session: SessionId,
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error (always
        /// [`ServeError::Backpressure`] today).
        last_error: Box<ServeError>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig { detail } => write!(f, "bad service config: {detail}"),
            Self::UnknownSession(sid) => write!(f, "unknown session {sid}"),
            Self::SessionPoisoned(sid) => {
                write!(f, "session {sid} is poisoned by an earlier panic")
            }
            Self::Backpressure {
                session,
                shard,
                queued_answers,
                capacity,
            } => write!(
                f,
                "backpressure on session {session}: shard {shard} queue holds \
                 {queued_answers}/{capacity} answers"
            ),
            Self::Stream(e) => write!(f, "stream error: {e}"),
            Self::Durability { session, detail } => match session {
                Some(sid) => write!(f, "durability failure on session {sid}: {detail}"),
                None => write!(f, "durability failure: {detail}"),
            },
            Self::RetriesExhausted {
                session,
                attempts,
                last_error,
            } => write!(
                f,
                "submit to session {session} failed after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Stream(e) => Some(e),
            Self::RetriesExhausted { last_error, .. } => Some(last_error),
            _ => None,
        }
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        Self::Stream(e)
    }
}
