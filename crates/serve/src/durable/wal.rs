//! The per-session write-ahead answer log.
//!
//! One append-only file per session, holding checksummed,
//! length-prefixed frames:
//!
//! ```text
//! frame   := len:u32le  crc:u32le  payload[len]     (crc32-IEEE over payload)
//! payload := 0x01 config…                           header (frame 0, exactly once)
//!          | 0x02 count:u32le record…               answer batch, submit order
//!          | 0x03 cum_batches:u64le budget:u64le    converge marker
//! record  := task:u64le worker:u64le (0x00 label:u8 | 0x01 value:f64le-bits)
//! ```
//!
//! **Batch frames** are appended by `CrowdServe::submit` *before* the
//! batch is enqueued (write-ahead: an answer is never in flight without
//! being on disk first). **Converge frames** are appended by the shard
//! drain after each successful converge, recording how many batch
//! frames the engine had absorbed (`cum_batches`) and the iteration
//! budget used — together they pin the exact converge schedule, which
//! is what makes replay bit-identical: EM trajectories depend on *when*
//! converges ran, not just on the answers.
//!
//! A reader accepts the longest valid prefix: any frame whose length
//! prefix overruns the file, whose checksum mismatches, or whose payload
//! does not parse ends the log there (a torn tail — the expected state
//! after a crash mid-append). Recovery truncates the file back to that
//! boundary so post-recovery appends extend a clean log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crowd_core::{InferenceOptions, Method, QualityInit};
use crowd_data::{Answer, AnswerRecord, TaskType};
use crowd_stream::StreamConfig;

use super::fault::{FaultKind, FaultPlan, FaultSite};
use super::FsyncPolicy;

/// Sanity cap on a single frame's payload (64 MiB): a corrupt length
/// prefix must not trigger a giant allocation.
const MAX_FRAME_LEN: u32 = 64 << 20;

const KIND_HEADER: u8 = 0x01;
const KIND_BATCH: u8 = 0x02;
const KIND_CONVERGE: u8 = 0x03;

/// One decoded WAL frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// The session's configuration (always frame 0).
    Header(Box<StreamConfig>),
    /// One submitted answer batch, in submission order.
    Batch(Vec<AnswerRecord>),
    /// A successful drain-tick converge over the first `cum_batches`
    /// batch frames, run under `budget` EM iterations.
    Converge {
        /// Batch frames the engine had absorbed when this converge ran.
        cum_batches: u64,
        /// The `ConvergeBudget` iteration cap the converge ran under.
        budget: u64,
    },
}

/// Everything a WAL file yielded.
#[derive(Debug)]
pub struct WalContents {
    /// The session config from the header frame (`None` when the file
    /// has no valid header — an unrecoverable log).
    pub config: Option<StreamConfig>,
    /// Every valid non-header frame, in order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (including the header frame).
    pub valid_len: u64,
    /// Number of valid frames (including the header).
    pub valid_frames: u64,
    /// Whether bytes past `valid_len` existed (a torn/corrupt tail).
    pub torn: bool,
}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, reflected) — the classic table-driven implementation.

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Byte-cursor encode/decode helpers (no serde in the build environment).

pub(crate) struct Enc(pub Vec<u8>);

impl Enc {
    pub fn new() -> Self {
        Self(Vec::new())
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    pub fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }
    pub fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    pub fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Encode a session config (the WAL header payload body).
///
/// `options.golden` and `options.warm_start` are not persisted: the
/// engine ignores the former and owns the latter, so a recovered config
/// is behaviourally identical with both `None`.
pub(crate) fn encode_config(e: &mut Enc, config: &StreamConfig) {
    e.u8(match config.method {
        Method::Ds => 0,
        Method::Lfc => 1,
        Method::Zc => 2,
        Method::Glad => 3,
        Method::Mv => 4,
        // StreamEngine::new rejects everything else, so a live session's
        // config is always encodable; tag 255 round-trips as a decode
        // failure rather than a silent mis-mapping.
        _ => 255,
    });
    match config.task_type {
        TaskType::DecisionMaking => {
            e.u8(0);
            e.u8(0);
        }
        TaskType::SingleChoice { choices } => {
            e.u8(1);
            e.u8(choices);
        }
        TaskType::Numeric => {
            e.u8(2);
            e.u8(0);
        }
    }
    e.u64(config.num_tasks as u64);
    e.u64(config.num_workers as u64);
    let o = &config.options;
    e.u64(o.max_iterations as u64);
    e.f64(o.tolerance);
    e.u64(o.seed);
    match o.threads {
        None => {
            e.u8(0);
            e.u64(0);
        }
        Some(t) => {
            e.u8(1);
            e.u64(t as u64);
        }
    }
    match &o.quality_init {
        QualityInit::Uniform => {
            e.u8(0);
            e.u64(0);
        }
        QualityInit::Qualification(qs) => {
            e.u8(1);
            e.u64(qs.len() as u64);
            for q in qs {
                match q {
                    None => {
                        e.u8(0);
                        e.f64(0.0);
                    }
                    Some(v) => {
                        e.u8(1);
                        e.f64(*v);
                    }
                }
            }
        }
    }
    e.u64(config.shard_count as u64);
}

pub(crate) fn decode_config(d: &mut Dec<'_>) -> Option<StreamConfig> {
    let method = match d.u8()? {
        0 => Method::Ds,
        1 => Method::Lfc,
        2 => Method::Zc,
        3 => Method::Glad,
        4 => Method::Mv,
        _ => return None,
    };
    let task_type = match (d.u8()?, d.u8()?) {
        (0, _) => TaskType::DecisionMaking,
        (1, choices) => TaskType::SingleChoice { choices },
        (2, _) => TaskType::Numeric,
        _ => return None,
    };
    let num_tasks = usize::try_from(d.u64()?).ok()?;
    let num_workers = usize::try_from(d.u64()?).ok()?;
    let max_iterations = usize::try_from(d.u64()?).ok()?;
    let tolerance = d.f64()?;
    let seed = d.u64()?;
    let threads = match (d.u8()?, d.u64()?) {
        (0, _) => None,
        (1, t) => Some(usize::try_from(t).ok()?),
        _ => return None,
    };
    let quality_init = match d.u8()? {
        0 => {
            d.u64()?;
            QualityInit::Uniform
        }
        1 => {
            let len = usize::try_from(d.u64()?).ok()?;
            if len > (1 << 32) {
                return None;
            }
            let mut qs = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let tag = d.u8()?;
                let v = d.f64()?;
                qs.push(match tag {
                    0 => None,
                    1 => Some(v),
                    _ => return None,
                });
            }
            QualityInit::Qualification(qs)
        }
        _ => return None,
    };
    let shard_count = usize::try_from(d.u64()?).ok()?.max(1);
    Some(StreamConfig {
        method,
        task_type,
        num_tasks,
        num_workers,
        options: InferenceOptions {
            max_iterations,
            tolerance,
            seed,
            quality_init,
            golden: None,
            threads,
            warm_start: None,
        },
        shard_count,
    })
}

fn encode_records(e: &mut Enc, records: &[AnswerRecord]) {
    e.u32(records.len() as u32);
    for r in records {
        e.u64(r.task as u64);
        e.u64(r.worker as u64);
        match r.answer {
            Answer::Label(l) => {
                e.u8(0);
                e.u8(l);
            }
            Answer::Numeric(v) => {
                e.u8(1);
                e.0.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
}

fn decode_records(d: &mut Dec<'_>) -> Option<Vec<AnswerRecord>> {
    let count = d.u32()? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let task = usize::try_from(d.u64()?).ok()?;
        let worker = usize::try_from(d.u64()?).ok()?;
        let answer = match d.u8()? {
            0 => Answer::Label(d.u8()?),
            1 => Answer::Numeric(f64::from_bits(d.u64()?)),
            _ => return None,
        };
        records.push(AnswerRecord {
            task,
            worker,
            answer,
        });
    }
    Some(records)
}

fn decode_frame(payload: &[u8]) -> Option<Frame> {
    let mut d = Dec::new(payload);
    let frame = match d.u8()? {
        KIND_HEADER => Frame::Header(Box::new(decode_config(&mut d)?)),
        KIND_BATCH => Frame::Batch(decode_records(&mut d)?),
        KIND_CONVERGE => Frame::Converge {
            cum_batches: d.u64()?,
            budget: d.u64()?,
        },
        _ => return None,
    };
    d.finished().then_some(frame)
}

fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Writer

/// Append side of one session's WAL. All methods keep the on-disk log
/// consistent-or-broken: a failed append either leaves the file exactly
/// as it was (transient error — retryable) or marks the writer broken
/// (no further appends accepted; the valid prefix is still recoverable).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    session: u64,
    /// Byte length of the valid log (everything before this is durable
    /// frames; nothing after it exists unless a torn write wedged us).
    len: u64,
    /// Per-session append index (fault-site key): counts every append
    /// *attempt*, including failed ones, so injected faults do not
    /// re-fire on retry.
    appends: u64,
    policy: FsyncPolicy,
    unsynced: u32,
    fault: FaultPlan,
    broken: Option<String>,
}

impl WalWriter {
    /// Create a fresh WAL with a header frame for `config`.
    pub fn create(
        path: &Path,
        session: u64,
        policy: FsyncPolicy,
        fault: FaultPlan,
        config: &StreamConfig,
    ) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut w = Self {
            file,
            path: path.to_path_buf(),
            session,
            len: 0,
            appends: 0,
            policy,
            unsynced: 0,
            fault,
            broken: None,
        };
        let mut e = Enc::new();
        e.u8(KIND_HEADER);
        encode_config(&mut e, config);
        // The header is written outside the fault plan: a session that
        // cannot even create its log fails loudly at create_session.
        let bytes = frame_bytes(&e.0);
        w.file.write_all(&bytes)?;
        w.file.sync_data()?;
        w.len = bytes.len() as u64;
        w.appends = 1;
        Ok(w)
    }

    /// Re-open an existing WAL for appending after recovery: truncates
    /// any torn tail back to `valid_len` and positions at the end.
    pub fn reopen(
        path: &Path,
        session: u64,
        policy: FsyncPolicy,
        fault: FaultPlan,
        valid_len: u64,
        valid_frames: u64,
    ) -> io::Result<Self> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        let mut w = Self {
            file,
            path: path.to_path_buf(),
            session,
            len: valid_len,
            appends: valid_frames,
            policy,
            unsynced: 0,
            fault,
            broken: None,
        };
        w.file.seek(SeekFrom::Start(valid_len))?;
        Ok(w)
    }

    /// The session this WAL belongs to.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Why the writer refuses appends, if it does.
    pub fn broken(&self) -> Option<&str> {
        self.broken.as_deref()
    }

    /// Force the writer into the broken state (used when the *caller*
    /// knows the log no longer matches reality — e.g. a converge ran but
    /// its frame could not be appended, so later appends would record an
    /// inconsistent schedule). Idempotent: an existing reason is kept.
    pub fn wedge(&mut self, why: String) {
        if self.broken.is_none() {
            self.broken = Some(why);
        }
    }

    /// Valid log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds only the header frame.
    pub fn is_empty(&self) -> bool {
        self.appends <= 1
    }

    /// Append one answer-batch frame (the write-ahead step of
    /// `submit`). On `Err` the batch is **not** durable and must not be
    /// enqueued.
    pub fn append_batch(&mut self, records: &[AnswerRecord]) -> io::Result<()> {
        let mut e = Enc::new();
        e.u8(KIND_BATCH);
        encode_records(&mut e, records);
        self.append_frame(&e.0)
    }

    /// Append a converge marker.
    pub fn append_converge(&mut self, cum_batches: u64, budget: u64) -> io::Result<()> {
        let mut e = Enc::new();
        e.u8(KIND_CONVERGE);
        e.u64(cum_batches);
        e.u64(budget);
        self.append_frame(&e.0)
    }

    fn append_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if let Some(why) = &self.broken {
            return Err(io::Error::other(format!("wal is broken: {why}")));
        }
        let site = FaultSite::WalAppend {
            session: self.session,
            index: self.appends,
        };
        self.appends += 1;
        let bytes = frame_bytes(payload);
        match self.fault.decide(site) {
            Some(FaultKind::Error) | Some(FaultKind::Panic) => {
                // Clean injected failure: nothing written, retryable.
                crate::obs::wal_faults().inc();
                crowd_obs::journal::record(crowd_obs::SpanKind::FaultInjected, self.session, 0.0);
                return Err(io::Error::other("injected wal append error"));
            }
            Some(FaultKind::Torn) => {
                // A crash mid-write: a strict prefix lands and the
                // writer wedges (the in-process repair path is exactly
                // what a real crash would NOT get to run).
                crate::obs::wal_faults().inc();
                crowd_obs::journal::record(crowd_obs::SpanKind::FaultInjected, self.session, 0.0);
                let keep = self.fault.torn_keep(site, bytes.len());
                let _ = self.file.write_all(&bytes[..keep]);
                let _ = self.file.sync_data();
                self.broken = Some("injected torn write".to_string());
                return Err(io::Error::other("injected torn wal write"));
            }
            None => {}
        }
        // The append timer covers the write plus any policy-driven fsync
        // (the full latency a submit pays for durability).
        let timer = crate::obs::wal_append_seconds().start_timer();
        if let Err(e) = self.file.write_all(&bytes).and_then(|()| self.maybe_sync()) {
            timer.discard();
            crate::obs::wal_append_failures().inc();
            // Best-effort repair: truncate back to the last good frame
            // boundary so the log stays consistent and the error is
            // transient; if even that fails, wedge.
            let repaired = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
            if repaired.is_err() {
                self.broken = Some(format!("append failed and truncate-repair failed: {e}"));
            }
            return Err(e);
        }
        let dt = timer.stop();
        crate::obs::wal_appends().inc();
        crowd_obs::journal::record(crowd_obs::SpanKind::WalAppend, self.session, dt);
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.timed_sync(),
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.unsynced = 0;
                    self.timed_sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    fn timed_sync(&mut self) -> io::Result<()> {
        let timer = crate::obs::wal_fsync_seconds().start_timer();
        let result = self.file.sync_data();
        if result.is_ok() {
            let dt = timer.stop();
            crate::obs::wal_fsyncs().inc();
            crowd_obs::journal::record(crowd_obs::SpanKind::WalFsync, self.session, dt);
        } else {
            timer.discard();
        }
        result
    }

    /// Flush buffered appends to disk regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.timed_sync()
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Reader

/// Read a WAL file, yielding the longest valid frame prefix. Never
/// fails on torn or corrupt content — corruption just ends the log
/// early (`torn` is set, `valid_len` marks the boundary). Only a
/// filesystem-level failure to read the file at all is an `Err`.
pub fn read_wal(path: &Path) -> io::Result<WalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut contents = WalContents {
        config: None,
        frames: Vec::new(),
        valid_len: 0,
        valid_frames: 0,
        torn: false,
    };
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            break;
        }
        let (start, end) = (pos + 8, pos + 8 + len as usize);
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        let Some(frame) = decode_frame(payload) else {
            break;
        };
        match frame {
            Frame::Header(config) => {
                if contents.valid_frames != 0 || contents.config.is_some() {
                    // A header anywhere but frame 0 is corruption.
                    return finish(contents, pos, &bytes);
                }
                contents.config = Some(*config);
            }
            other => {
                if contents.config.is_none() {
                    // Frames before a header are unusable.
                    return finish(contents, 0, &bytes);
                }
                contents.frames.push(other);
            }
        }
        contents.valid_frames += 1;
        pos = end;
    }
    finish(contents, pos, &bytes)
}

fn finish(mut contents: WalContents, pos: usize, bytes: &[u8]) -> io::Result<WalContents> {
    contents.valid_len = pos as u64;
    contents.torn = pos < bytes.len();
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::TaskType;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowd-wal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn config() -> StreamConfig {
        StreamConfig::new(Method::Ds, TaskType::DecisionMaking, 10, 5)
    }

    fn rec(task: usize, worker: usize, label: u8) -> AnswerRecord {
        AnswerRecord {
            task,
            worker,
            answer: Answer::Label(label),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn config_round_trips_through_header() {
        let mut cfg = StreamConfig::new(Method::Glad, TaskType::SingleChoice { choices: 4 }, 7, 3);
        cfg.options.max_iterations = 55;
        cfg.options.tolerance = 2.5e-4;
        cfg.options.seed = 99;
        cfg.options.threads = Some(2);
        cfg.options.quality_init = QualityInit::Qualification(vec![Some(0.9), None, Some(0.4)]);
        cfg = cfg.with_shards(6);
        let mut e = Enc::new();
        encode_config(&mut e, &cfg);
        let mut d = Dec::new(&e.0);
        let back = decode_config(&mut d).expect("decodes");
        assert!(d.finished());
        assert_eq!(back.shard_count, 6);
        assert_eq!(back.method, cfg.method);
        assert_eq!(back.task_type, cfg.task_type);
        assert_eq!(back.num_tasks, cfg.num_tasks);
        assert_eq!(back.num_workers, cfg.num_workers);
        assert_eq!(back.options.max_iterations, 55);
        assert_eq!(back.options.tolerance.to_bits(), 2.5e-4f64.to_bits());
        assert_eq!(back.options.seed, 99);
        assert_eq!(back.options.threads, Some(2));
        match back.options.quality_init {
            QualityInit::Qualification(qs) => {
                assert_eq!(qs, vec![Some(0.9), None, Some(0.4)]);
            }
            other => panic!("wrong quality init {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        let path = tmp("roundtrip");
        let mut w =
            WalWriter::create(&path, 3, FsyncPolicy::Always, FaultPlan::none(), &config()).unwrap();
        w.append_batch(&[rec(0, 0, 1), rec(1, 2, 0)]).unwrap();
        w.append_converge(1, u64::MAX).unwrap();
        w.append_batch(&[rec(2, 1, 1)]).unwrap();

        let contents = read_wal(&path).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.valid_frames, 4);
        let cfg = contents.config.expect("header decodes");
        assert_eq!(cfg.num_tasks, 10);
        assert_eq!(contents.frames.len(), 3);
        match &contents.frames[0] {
            Frame::Batch(records) => {
                assert_eq!(records.len(), 2);
                assert_eq!(records[1].worker, 2);
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert!(matches!(
            contents.frames[1],
            Frame::Converge {
                cum_batches: 1,
                budget: u64::MAX
            }
        ));
    }

    #[test]
    fn corrupt_byte_ends_the_log_at_the_previous_frame() {
        let path = tmp("corrupt");
        let mut w =
            WalWriter::create(&path, 0, FsyncPolicy::Always, FaultPlan::none(), &config()).unwrap();
        w.append_batch(&[rec(0, 0, 1)]).unwrap();
        let good_len = w.len();
        w.append_batch(&[rec(1, 1, 0)]).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the LAST frame's payload.
        let idx = good_len as usize + 9;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal(&path).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.valid_len, good_len);
        assert_eq!(contents.frames.len(), 1);
    }

    #[test]
    fn injected_clean_error_leaves_log_intact_and_is_retryable() {
        let path = tmp("inject-error");
        // Appends: header=0, batch=1, batch=2 — fail exactly index 1.
        let fault = FaultPlan::seeded(0)
            .schedule(
                FaultSite::WalAppend {
                    session: 9,
                    index: 1,
                },
                FaultKind::Error,
            )
            .build();
        let mut w = WalWriter::create(&path, 9, FsyncPolicy::Always, fault, &config()).unwrap();
        let err = w.append_batch(&[rec(0, 0, 1)]).unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(w.broken().is_none(), "clean error is transient");
        // Retry (now append index 2) succeeds and the log is coherent.
        w.append_batch(&[rec(0, 0, 1)]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.frames.len(), 1);
    }

    #[test]
    fn injected_torn_write_wedges_writer_but_prefix_stays_valid() {
        let path = tmp("inject-torn");
        let fault = FaultPlan::seeded(4)
            .schedule(
                FaultSite::WalAppend {
                    session: 2,
                    index: 2,
                },
                FaultKind::Torn,
            )
            .build();
        let mut w = WalWriter::create(&path, 2, FsyncPolicy::Always, fault, &config()).unwrap();
        w.append_batch(&[rec(0, 0, 1)]).unwrap();
        let good_len = w.len();
        w.append_batch(&[rec(1, 1, 0)]).unwrap_err();
        assert!(w.broken().is_some());
        // Further appends refuse.
        assert!(w.append_batch(&[rec(2, 2, 1)]).is_err());
        // The reader sees the valid prefix; reopen truncates the tear.
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.valid_len, good_len);
        assert_eq!(contents.frames.len(), 1);
        drop(w);
        let mut w = WalWriter::reopen(
            &path,
            2,
            FsyncPolicy::Always,
            FaultPlan::none(),
            contents.valid_len,
            contents.valid_frames,
        )
        .unwrap();
        w.append_batch(&[rec(3, 3, 1)]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.frames.len(), 2);
    }
}
