//! Periodic snapshot checkpoints of warm `StreamEngine` state.
//!
//! A snapshot lets recovery skip re-running EM over the WAL prefix it
//! covers: the answer log itself is rebuilt by (cheap, deterministic)
//! `push_batch` replay, while the expensive part — the warm posteriors
//! and worker-quality parameters the converge schedule produced — is
//! restored from the checkpoint. The file records the replay position
//! it was taken at (`cum_batches` batch frames absorbed, `cum_converges`
//! converge frames applied) so the replayer knows exactly where to
//! switch from "push, skip EM" to "push and converge".
//!
//! Layout (single frame, same checksum discipline as the WAL):
//!
//! ```text
//! file    := magic:u32le("CSNP")  len:u32le  crc:u32le  payload[len]
//! payload := version:u8  cum_batches:u64  cum_converges:u64  checkpoint
//! ```
//!
//! Writes are atomic: the frame goes to a `.tmp` sibling, is fsynced,
//! then renamed over the target — a crash mid-write leaves either the
//! old snapshot or none, never a torn one. Corruption from outside
//! (bit rot, manual truncation) is still caught by the checksum, and
//! any unreadable snapshot simply downgrades recovery to full-WAL
//! replay — snapshots are an optimisation, never a correctness
//! dependency.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use crowd_core::{WarmStart, WorkerQuality};
use crowd_stream::EngineCheckpoint;

use super::fault::{FaultKind, FaultPlan, FaultSite};
use super::wal::{crc32, Dec, Enc};

const MAGIC: u32 = 0x434f_4e53; // "SNOC" little-endian → reads as "CSNP" tag
const VERSION: u8 = 1;
const MAX_SNAPSHOT_LEN: u32 = 256 << 20;

/// A decoded snapshot: an engine checkpoint plus the WAL replay
/// position it was taken at.
#[derive(Debug, Clone)]
pub struct SnapshotData {
    /// Batch frames the engine had absorbed when the snapshot was taken.
    pub cum_batches: u64,
    /// Converge frames that had been applied when the snapshot was taken.
    pub cum_converges: u64,
    /// The warm engine state (see [`EngineCheckpoint`]).
    pub checkpoint: EngineCheckpoint,
}

fn encode_worker_quality(e: &mut Enc, q: &WorkerQuality) {
    match q {
        WorkerQuality::Probability(p) => {
            e.u8(0);
            e.f64(*p);
        }
        WorkerQuality::Weight(w) => {
            e.u8(1);
            e.f64(*w);
        }
        WorkerQuality::Confusion(m) => {
            e.u8(2);
            e.u64(m.len() as u64);
            e.u64(m.first().map_or(0, |r| r.len()) as u64);
            for row in m {
                for v in row {
                    e.f64(*v);
                }
            }
        }
        WorkerQuality::Variance(v) => {
            e.u8(3);
            e.f64(*v);
        }
        WorkerQuality::BiasVariance { bias, variance } => {
            e.u8(4);
            e.f64(*bias);
            e.f64(*variance);
        }
        WorkerQuality::Skills(s) => {
            e.u8(5);
            e.u64(s.len() as u64);
            for v in s {
                e.f64(*v);
            }
        }
        WorkerQuality::Unmodeled => e.u8(6),
    }
}

fn decode_worker_quality(d: &mut Dec<'_>) -> Option<WorkerQuality> {
    Some(match d.u8()? {
        0 => WorkerQuality::Probability(d.f64()?),
        1 => WorkerQuality::Weight(d.f64()?),
        2 => {
            let rows = usize::try_from(d.u64()?).ok()?;
            let cols = usize::try_from(d.u64()?).ok()?;
            if rows.checked_mul(cols)? > (1 << 24) {
                return None;
            }
            let mut m = Vec::with_capacity(rows);
            for _ in 0..rows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(d.f64()?);
                }
                m.push(row);
            }
            WorkerQuality::Confusion(m)
        }
        3 => WorkerQuality::Variance(d.f64()?),
        4 => WorkerQuality::BiasVariance {
            bias: d.f64()?,
            variance: d.f64()?,
        },
        5 => {
            let len = usize::try_from(d.u64()?).ok()?;
            if len > (1 << 24) {
                return None;
            }
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                s.push(d.f64()?);
            }
            WorkerQuality::Skills(s)
        }
        6 => WorkerQuality::Unmodeled,
        _ => return None,
    })
}

fn encode_checkpoint(e: &mut Enc, cp: &EngineCheckpoint) {
    e.u64(cp.answers_seen as u64);
    e.u64(cp.converges as u64);
    e.u64(cp.pending_answers as u64);
    e.u8(cp.last_converged as u8);
    match &cp.warm {
        None => e.u8(0),
        Some(w) => {
            e.u8(1);
            match &w.posteriors {
                None => e.u8(0),
                Some(p) => {
                    e.u8(1);
                    e.u64(p.len() as u64);
                    e.u64(p.first().map_or(0, |r| r.len()) as u64);
                    for row in p {
                        for v in row {
                            e.f64(*v);
                        }
                    }
                }
            }
            e.u64(w.worker_quality.len() as u64);
            for q in &w.worker_quality {
                encode_worker_quality(e, q);
            }
        }
    }
}

fn decode_checkpoint(d: &mut Dec<'_>) -> Option<EngineCheckpoint> {
    let answers_seen = usize::try_from(d.u64()?).ok()?;
    let converges = usize::try_from(d.u64()?).ok()?;
    let pending_answers = usize::try_from(d.u64()?).ok()?;
    let last_converged = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let warm = match d.u8()? {
        0 => None,
        1 => {
            let posteriors = match d.u8()? {
                0 => None,
                1 => {
                    let rows = usize::try_from(d.u64()?).ok()?;
                    let cols = usize::try_from(d.u64()?).ok()?;
                    if rows.checked_mul(cols)? > (1 << 28) {
                        return None;
                    }
                    let mut p = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        let mut row = Vec::with_capacity(cols);
                        for _ in 0..cols {
                            row.push(d.f64()?);
                        }
                        p.push(row);
                    }
                    Some(p)
                }
                _ => return None,
            };
            let n = usize::try_from(d.u64()?).ok()?;
            if n > (1 << 24) {
                return None;
            }
            let mut worker_quality = Vec::with_capacity(n);
            for _ in 0..n {
                worker_quality.push(decode_worker_quality(d)?);
            }
            Some(WarmStart {
                posteriors,
                worker_quality,
            })
        }
        _ => return None,
    };
    Some(EngineCheckpoint {
        answers_seen,
        warm,
        converges,
        pending_answers,
        last_converged,
    })
}

/// Atomically write `data` to `path` (tmp + fsync + rename), consulting
/// `fault` at the given per-session snapshot `index`. On `Err` the
/// previous snapshot (if any) is untouched.
///
/// `sync` mirrors the WAL's fsync policy: `false` (from
/// `FsyncPolicy::Never`) skips the data and directory fsyncs — the
/// rename is still atomic against in-process crashes, and a power-loss
/// torn page is caught by the read-side checksum, downgrading recovery
/// to full-WAL replay rather than corrupting it.
pub fn write_snapshot(
    path: &Path,
    session: u64,
    index: u64,
    fault: &FaultPlan,
    data: &SnapshotData,
    sync: bool,
) -> io::Result<()> {
    let site = FaultSite::Snapshot { session, index };
    match fault.decide(site) {
        Some(FaultKind::Error) | Some(FaultKind::Panic) => {
            crate::obs::snapshot_faults().inc();
            crowd_obs::journal::record(crowd_obs::SpanKind::FaultInjected, session, 0.0);
            return Err(io::Error::other("injected snapshot write error"));
        }
        Some(FaultKind::Torn) => {
            crate::obs::snapshot_faults().inc();
            crowd_obs::journal::record(crowd_obs::SpanKind::FaultInjected, session, 0.0);
            // A "torn" snapshot write crashes before the rename: the tmp
            // file may be garbage but the real snapshot never changes.
            let tmp = path.with_extension("snap.tmp");
            let bytes = snapshot_bytes(data);
            let keep = fault.torn_keep(site, bytes.len());
            let _ = fs::write(&tmp, &bytes[..keep]);
            return Err(io::Error::other("injected torn snapshot write"));
        }
        None => {}
    }
    let tmp = path.with_extension("snap.tmp");
    let bytes = snapshot_bytes(data);
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    f.write_all(&bytes)?;
    if sync {
        f.sync_data()?;
    }
    drop(f);
    fs::rename(&tmp, path)?;
    // Directory sync is best-effort: rename durability matters for a
    // power-loss window, not for the in-process crash model we test.
    if sync {
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

fn snapshot_bytes(data: &SnapshotData) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(VERSION);
    e.u64(data.cum_batches);
    e.u64(data.cum_converges);
    encode_checkpoint(&mut e, &data.checkpoint);
    let payload = e.0;
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Read and validate a snapshot. `None` for *any* problem — missing
/// file, bad magic, checksum mismatch, short read, unknown version —
/// because every such case has the same answer: fall back to full-WAL
/// replay.
pub fn read_snapshot(path: &Path) -> Option<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 12 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let len = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if magic != MAGIC || len > MAX_SNAPSHOT_LEN {
        return None;
    }
    let payload = bytes.get(12..12 + len as usize)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut d = Dec::new(payload);
    if d.u8()? != VERSION {
        return None;
    }
    let cum_batches = d.u64()?;
    let cum_converges = d.u64()?;
    let checkpoint = decode_checkpoint(&mut d)?;
    d.finished().then_some(SnapshotData {
        cum_batches,
        cum_converges,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowd-snap-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("s.snap")
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            cum_batches: 12,
            cum_converges: 3,
            checkpoint: EngineCheckpoint {
                answers_seen: 240,
                warm: Some(WarmStart {
                    posteriors: Some(vec![vec![0.25, 0.75], vec![0.5, 0.5]]),
                    worker_quality: vec![
                        WorkerQuality::Probability(0.8),
                        WorkerQuality::Confusion(vec![vec![0.9, 0.1], vec![0.2, 0.8]]),
                        WorkerQuality::BiasVariance {
                            bias: 0.1,
                            variance: 2.0,
                        },
                        WorkerQuality::Skills(vec![1.0, -0.5]),
                        WorkerQuality::Unmodeled,
                    ],
                }),
                converges: 3,
                pending_answers: 0,
                last_converged: true,
            },
        }
    }

    fn assert_round_trips(data: &SnapshotData, back: &SnapshotData) {
        assert_eq!(back.cum_batches, data.cum_batches);
        assert_eq!(back.cum_converges, data.cum_converges);
        assert_eq!(back.checkpoint.answers_seen, data.checkpoint.answers_seen);
        assert_eq!(back.checkpoint.converges, data.checkpoint.converges);
        assert_eq!(
            back.checkpoint.last_converged,
            data.checkpoint.last_converged
        );
        let (a, b) = (
            back.checkpoint.warm.as_ref().unwrap(),
            data.checkpoint.warm.as_ref().unwrap(),
        );
        assert_eq!(a.posteriors, b.posteriors);
        assert_eq!(a.worker_quality.len(), b.worker_quality.len());
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let path = tmp("roundtrip");
        let data = sample();
        write_snapshot(&path, 0, 0, &FaultPlan::none(), &data, true).unwrap();
        let back = read_snapshot(&path).expect("snapshot reads back");
        assert_round_trips(&data, &back);
    }

    #[test]
    fn corrupt_snapshot_reads_as_none() {
        let path = tmp("corrupt");
        write_snapshot(&path, 0, 0, &FaultPlan::none(), &sample(), true).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).is_none());
        // Truncation too.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(read_snapshot(&path).is_none());
    }

    #[test]
    fn injected_snapshot_fault_preserves_previous_snapshot() {
        let path = tmp("inject");
        let first = sample();
        write_snapshot(&path, 5, 0, &FaultPlan::none(), &first, true).unwrap();
        let fault = FaultPlan::seeded(11)
            .schedule(
                FaultSite::Snapshot {
                    session: 5,
                    index: 1,
                },
                FaultKind::Torn,
            )
            .build();
        let mut second = sample();
        second.cum_batches = 99;
        write_snapshot(&path, 5, 1, &fault, &second, false).unwrap_err();
        let back = read_snapshot(&path).expect("old snapshot survives");
        assert_eq!(back.cum_batches, first.cum_batches);
    }

    #[test]
    fn missing_snapshot_reads_as_none() {
        assert!(read_snapshot(Path::new("/nonexistent/x.snap")).is_none());
    }
}
