//! Deterministic fault injection for the durability and shard-tick
//! paths.
//!
//! Chaos testing is only useful when a failure reproduces: a fault plan
//! is a **pure function of its seed and the fault site** — the same plan
//! injects the same faults at the same operations on every run,
//! regardless of thread interleaving. Sites are keyed per session by
//! per-session operation indices (append #k on session s, converge
//! attempt #k on session s), which are themselves deterministic, so a
//! whole chaos run is reproducible from `CROWD_FAULT_SEED` alone.
//!
//! The plan is threaded through WAL appends, snapshot writes, and the
//! shard drain's converge attempts. The default [`FaultPlan::none`] has
//! zero cost on every path (a `None` check).

use std::sync::Arc;

/// Where a fault can be injected. Sites are keyed by the owning
/// session's raw id (creation order, stable across recovery) and a
/// per-session operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The `index`-th WAL frame append for `session` (the header frame
    /// is index 0, the first batch frame index 1, …; converge frames
    /// count too).
    WalAppend {
        /// Raw session id.
        session: u64,
        /// Per-session append index.
        index: u64,
    },
    /// The `index`-th snapshot write for `session`.
    Snapshot {
        /// Raw session id.
        session: u64,
        /// Per-session snapshot index.
        index: u64,
    },
    /// The `index`-th drain-tick converge attempt for `session`
    /// (panicked attempts count, so a restarted session's next attempt
    /// has a fresh index and a scheduled fault does not re-fire).
    Converge {
        /// Raw session id.
        session: u64,
        /// Per-session converge-attempt index.
        index: u64,
    },
}

impl FaultSite {
    fn kind_tag(&self) -> u64 {
        match self {
            Self::WalAppend { .. } => 0x57414c,  // "WAL"
            Self::Snapshot { .. } => 0x534e4150, // "SNAP"
            Self::Converge { .. } => 0x434f4e56, // "CONV"
        }
    }

    fn key(&self) -> (u64, u64) {
        match *self {
            Self::WalAppend { session, index }
            | Self::Snapshot { session, index }
            | Self::Converge { session, index } => (session, index),
        }
    }
}

/// What to inject at a matched site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The I/O operation fails cleanly (typed error, nothing written).
    /// Meaningless for [`FaultSite::Converge`] (treated as
    /// [`FaultKind::Panic`]).
    Error,
    /// The write is torn: a deterministic strict prefix of the bytes
    /// lands, then the operation errors — simulating a crash mid-write.
    /// Meaningless for converge sites (treated as panic).
    Torn,
    /// The operation panics (only meaningful for converge sites, where
    /// the drain's `catch_unwind` turns it into session poisoning; I/O
    /// sites treat it as [`FaultKind::Error`]).
    Panic,
}

#[derive(Debug, Default)]
struct PlanInner {
    seed: u64,
    /// Probability of a clean write error per WAL append.
    wal_error_rate: f64,
    /// Probability of a torn write per WAL append.
    wal_torn_rate: f64,
    /// Probability of a clean write error per snapshot write.
    snapshot_error_rate: f64,
    /// Probability of a panic per converge attempt.
    converge_panic_rate: f64,
    /// Exact-site overrides, checked before the rates.
    scheduled: Vec<(FaultSite, FaultKind)>,
}

/// A deterministic, seeded fault-injection plan (see the module docs).
/// Cloning is cheap (shared immutable state); [`FaultPlan::none`] is the
/// no-fault default every production configuration uses.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl FaultPlan {
    /// The no-fault plan (default).
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// Start building a seeded plan. Without any rates or scheduled
    /// faults the plan still injects nothing.
    pub fn seeded(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            inner: PlanInner {
                seed,
                ..PlanInner::default()
            },
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The fault to inject at `site`, if any. Pure: the same plan and
    /// site always produce the same decision.
    pub fn decide(&self, site: FaultSite) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        if let Some((_, kind)) = inner.scheduled.iter().find(|(s, _)| *s == site) {
            return Some(*kind);
        }
        let (session, index) = site.key();
        let h = splitmix64(
            inner
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(site.kind_tag())
                .wrapping_add(session.wrapping_mul(0x1000_0000_01b3))
                .wrapping_add(index),
        );
        // Uniform in [0, 1) from the top 53 bits.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        match site {
            FaultSite::WalAppend { .. } => {
                if u < inner.wal_error_rate {
                    Some(FaultKind::Error)
                } else if u < inner.wal_error_rate + inner.wal_torn_rate {
                    Some(FaultKind::Torn)
                } else {
                    None
                }
            }
            FaultSite::Snapshot { .. } => {
                (u < inner.snapshot_error_rate).then_some(FaultKind::Error)
            }
            FaultSite::Converge { .. } => {
                (u < inner.converge_panic_rate).then_some(FaultKind::Panic)
            }
        }
    }

    /// How many bytes of an `len`-byte write a torn fault at `site`
    /// keeps: a deterministic strict prefix (at least 1 byte short, so a
    /// torn frame is always detectable).
    pub fn torn_keep(&self, site: FaultSite, len: usize) -> usize {
        let Some(inner) = self.inner.as_ref() else {
            return len;
        };
        if len == 0 {
            return 0;
        }
        let (session, index) = site.key();
        let h = splitmix64(inner.seed ^ 0x746f_726e ^ session.rotate_left(17) ^ index);
        (h as usize) % len
    }
}

/// Builder for [`FaultPlan`]. All rates are clamped to `[0, 1]`.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    inner: PlanInner,
}

impl FaultPlanBuilder {
    /// Inject clean write errors on this fraction of WAL appends.
    pub fn wal_error_rate(mut self, rate: f64) -> Self {
        self.inner.wal_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Inject torn writes on this fraction of WAL appends.
    pub fn wal_torn_rate(mut self, rate: f64) -> Self {
        self.inner.wal_torn_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Inject clean write errors on this fraction of snapshot writes.
    pub fn snapshot_error_rate(mut self, rate: f64) -> Self {
        self.inner.snapshot_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Inject panics on this fraction of drain-tick converge attempts.
    pub fn converge_panic_rate(mut self, rate: f64) -> Self {
        self.inner.converge_panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Schedule an exact fault at one site (checked before the rates).
    pub fn schedule(mut self, site: FaultSite, kind: FaultKind) -> Self {
        self.inner.scheduled.push((site, kind));
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(self.inner)),
        }
    }
}

/// SplitMix64 — the same tiny deterministic mixer the sweep-path seeding
/// uses; good avalanche, no state.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for i in 0..100 {
            assert_eq!(
                plan.decide(FaultSite::WalAppend {
                    session: 0,
                    index: i
                }),
                None
            );
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_site() {
        let a = FaultPlan::seeded(42)
            .wal_error_rate(0.3)
            .wal_torn_rate(0.2)
            .converge_panic_rate(0.25)
            .build();
        let b = FaultPlan::seeded(42)
            .wal_error_rate(0.3)
            .wal_torn_rate(0.2)
            .converge_panic_rate(0.25)
            .build();
        let c = FaultPlan::seeded(43)
            .wal_error_rate(0.3)
            .wal_torn_rate(0.2)
            .converge_panic_rate(0.25)
            .build();
        let mut differs = false;
        for s in 0..4u64 {
            for i in 0..64u64 {
                for site in [
                    FaultSite::WalAppend {
                        session: s,
                        index: i,
                    },
                    FaultSite::Converge {
                        session: s,
                        index: i,
                    },
                ] {
                    assert_eq!(a.decide(site), b.decide(site), "same seed, same site");
                    differs |= a.decide(site) != c.decide(site);
                }
            }
        }
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::seeded(7).wal_error_rate(0.25).build();
        let fired = (0..4000u64)
            .filter(|&i| {
                plan.decide(FaultSite::WalAppend {
                    session: i / 64,
                    index: i % 64,
                })
                .is_some()
            })
            .count();
        let rate = fired as f64 / 4000.0;
        assert!((0.18..0.32).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn scheduled_sites_override_rates() {
        let site = FaultSite::Converge {
            session: 3,
            index: 1,
        };
        let plan = FaultPlan::seeded(1)
            .schedule(site, FaultKind::Panic)
            .build();
        assert_eq!(plan.decide(site), Some(FaultKind::Panic));
        assert_eq!(
            plan.decide(FaultSite::Converge {
                session: 3,
                index: 2
            }),
            None
        );
    }

    #[test]
    fn torn_keep_is_a_strict_prefix() {
        let plan = FaultPlan::seeded(5).wal_torn_rate(1.0).build();
        for len in 1..200usize {
            let keep = plan.torn_keep(
                FaultSite::WalAppend {
                    session: 1,
                    index: len as u64,
                },
                len,
            );
            assert!(keep < len, "torn write must lose at least one byte");
        }
    }
}
