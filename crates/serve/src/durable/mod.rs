//! Durability and fault tolerance for the serve layer.
//!
//! Three pieces (see ARCHITECTURE.md for the full state machine):
//!
//! - [`wal`] — a per-session write-ahead answer log. `submit` appends
//!   the batch as a checksummed frame *before* enqueueing it, and the
//!   shard drain appends a converge marker after each successful
//!   converge. The log therefore pins both the answers **and the exact
//!   converge schedule**, which is what makes replay bit-identical
//!   (warm EM trajectories depend on when converges ran).
//! - [`snapshot`] — periodic atomic checkpoints of warm engine state,
//!   taken every [`DurabilityConfig::snapshot_every_converges`]
//!   successful converges. Recovery uses the latest valid snapshot to
//!   skip re-running EM over the prefix it covers; answers themselves
//!   are always re-pushed from the WAL (cheap and deterministic). A
//!   corrupt, missing, or inconsistent snapshot silently downgrades to
//!   full-WAL replay — snapshots are an optimisation, never a
//!   correctness dependency.
//! - [`fault`] — a seeded, deterministic [`fault::FaultPlan`] threaded through
//!   WAL appends, snapshot writes, and drain-tick converges, so chaos
//!   tests reproduce from a single seed.
//!
//! Recovery invariant (property-tested in `tests/durability.rs`): for a
//! WAL truncated at **any** frame boundary, rebuilding the session and
//! continuing the remaining schedule produces bit-identical plurality
//! and posterior outputs to the uninterrupted run.

pub mod fault;
pub mod snapshot;
pub mod wal;

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crowd_data::AnswerRecord;
use crowd_stream::{ConvergeBudget, StreamConfig, StreamEngine, StreamError, StreamReport};

use snapshot::SnapshotData;
use wal::Frame;

/// When WAL appends reach the disk.
///
/// The policy trades ingest latency against the crash-loss window:
/// `Always` loses nothing a successful `submit` acknowledged; `EveryN`
/// bounds loss to the last `n - 1` acknowledged batches; `Never` leaves
/// flushing to the OS page cache (process-crash-safe, power-loss-unsafe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every frame — an acknowledged submit is durable.
    Always,
    /// `fsync` every `n` frames (values of 0 behave as 1).
    EveryN(u32),
    /// Never `fsync`; the OS flushes when it pleases.
    Never,
}

/// Durability configuration for a [`CrowdServe`](crate::CrowdServe).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the per-session WAL and snapshot files
    /// (`wal-<id>.log`, `snap-<id>.snap`). Created if missing.
    pub dir: PathBuf,
    /// When WAL appends are fsynced.
    pub fsync: FsyncPolicy,
    /// Snapshot a session's warm state every this many successful
    /// converges (`0` disables snapshots; recovery then always replays
    /// the full WAL).
    pub snapshot_every_converges: u64,
    /// How many times a poisoned session may be auto-restarted from its
    /// last checkpoint before it stays poisoned and must be evicted.
    pub max_session_restarts: u32,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the safe defaults: fsync on every
    /// append, a snapshot every 4 converges, up to 3 auto-restarts.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every_converges: 4,
            max_session_restarts: 3,
        }
    }
}

/// Wall-clock cost of each recovery phase, in the order they run.
/// Mirrored into the `serve.recovery.*_seconds` metrics and the
/// `recovery_phase` journal spans (key 0=scan, 1=snapshot load,
/// 2=replay, 3=requeue).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryPhaseTimings {
    /// Directory scan plus reading every WAL's valid prefix off disk.
    pub scan: Duration,
    /// Reading and validating snapshot files (downgrade checks included).
    pub snapshot_load: Duration,
    /// Re-pushing batches and re-running converges (the EM work).
    pub replay: Duration,
    /// Re-enqueueing tail batches onto ingest queues.
    pub requeue: Duration,
}

impl RecoveryPhaseTimings {
    pub(crate) fn absorb(&mut self, other: &RecoveryPhaseTimings) {
        self.scan += other.scan;
        self.snapshot_load += other.snapshot_load;
        self.replay += other.replay;
        self.requeue += other.requeue;
    }
}

/// What recovery read and replayed for one session — the on-disk counts
/// a durability audit checks against the WAL actually written.
#[derive(Debug, Clone)]
pub struct RecoveredSessionCounts {
    /// The recovered session.
    pub session: crate::SessionId,
    /// Valid WAL frames read (header included).
    pub wal_frames: u64,
    /// Valid WAL bytes read (the prefix the reopen truncates to).
    pub wal_bytes: u64,
    /// Converges actually re-run for this session (EM work).
    pub converges_replayed: u64,
    /// Answers from this session's tail batches re-enqueued for the next
    /// drain tick.
    pub answers_requeued: usize,
}

/// What [`CrowdServe::recover`](crate::CrowdServe::recover) did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sessions rebuilt and serving again.
    pub sessions_recovered: usize,
    /// WAL files that could not produce a session (unreadable header or
    /// an engine-level replay failure) — their files are left in place
    /// for inspection.
    pub sessions_skipped: usize,
    /// Sessions whose snapshot fast path was used.
    pub snapshots_used: usize,
    /// Sessions with a snapshot that was unusable (corrupt, checksum
    /// mismatch, or inconsistent with the WAL) — recovered via full-WAL
    /// replay instead.
    pub snapshot_fallbacks: usize,
    /// Sessions whose WAL ended in a torn tail (truncated to the last
    /// valid frame).
    pub torn_tails_truncated: usize,
    /// Converges re-run during replay (EM work actually done).
    pub converges_replayed: u64,
    /// Answers from WAL tail batches (logged but never covered by a
    /// converge frame) re-enqueued onto ingest queues for the next tick.
    pub answers_requeued: usize,
    /// Why each skipped session could not be rebuilt (parallel to
    /// `sessions_skipped`).
    pub skipped: Vec<(crate::SessionId, String)>,
    /// Per-phase wall-clock timings (also exported as
    /// `serve.recovery.*_seconds` metrics).
    pub timings: RecoveryPhaseTimings,
    /// Per-session frame/byte/replay counts, one entry per recovered
    /// session, ascending id order.
    pub per_session: Vec<RecoveredSessionCounts>,
}

pub(crate) fn wal_path(dir: &Path, raw: u64) -> PathBuf {
    dir.join(format!("wal-{raw}.log"))
}

pub(crate) fn snapshot_path(dir: &Path, raw: u64) -> PathBuf {
    dir.join(format!("snap-{raw}.snap"))
}

/// Session ids with a WAL file under `dir`, ascending.
pub(crate) fn scan_wal_sessions(dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|id| id.parse::<u64>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// A session rebuilt from its WAL (and possibly a snapshot).
pub(crate) struct ReplayedSession {
    pub engine: StreamEngine,
    /// The report of the last converge actually re-run during replay
    /// (`None` when the snapshot covered every converge frame — the
    /// next drain tick produces a fresh one).
    pub last_report: Option<StreamReport>,
    /// Batch frames absorbed into the engine.
    pub cum_batches: u64,
    /// Converge frames applied (skipped-via-snapshot ones included).
    pub cum_converges: u64,
    /// Converges actually re-run (EM work).
    pub converges_run: u64,
    pub snapshot_used: bool,
    /// A snapshot existed but was unusable.
    pub snapshot_fallback: bool,
    /// Batches logged after the last converge frame: not absorbed here,
    /// the caller re-enqueues them (crash recovery) or pushes a prefix
    /// (in-place restart).
    pub tail_batches: Vec<Vec<AnswerRecord>>,
    /// Valid WAL prefix in bytes / frames (reopen truncates to this).
    pub valid_len: u64,
    pub valid_frames: u64,
    /// The WAL had bytes past the valid prefix.
    pub torn: bool,
    /// Per-phase wall time spent rebuilding this session (scan = WAL
    /// read; requeue is the caller's phase and stays zero here).
    pub timings: RecoveryPhaseTimings,
}

pub(crate) enum SessionRecoveryError {
    /// The WAL file could not be read at all.
    Io(io::Error),
    /// No valid header frame — nothing to rebuild.
    NoHeader,
    /// The engine rejected the replay (config no longer constructible,
    /// or a replayed converge failed).
    Stream(StreamError),
}

impl std::fmt::Display for SessionRecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal unreadable: {e}"),
            Self::NoHeader => write!(f, "wal has no valid header frame"),
            Self::Stream(e) => write!(f, "replay failed: {e}"),
        }
    }
}

enum ReplayFail {
    /// The snapshot could not be installed — retry without it.
    Snapshot,
    /// The replay itself failed — the session is unrecoverable.
    Stream(StreamError),
}

/// Rebuild one session from `dir`. Pure with respect to the filesystem:
/// nothing is written — the caller truncates/reopens the WAL afterwards.
pub(crate) fn recover_session(
    dir: &Path,
    raw: u64,
) -> Result<ReplayedSession, SessionRecoveryError> {
    let mut timings = RecoveryPhaseTimings::default();
    let t0 = Instant::now();
    let contents = wal::read_wal(&wal_path(dir, raw)).map_err(SessionRecoveryError::Io)?;
    timings.scan = t0.elapsed();
    let Some(config) = contents.config.clone() else {
        return Err(SessionRecoveryError::NoHeader);
    };
    let snap_path = snapshot_path(dir, raw);
    // "Present" means the file exists — a snapshot that exists but cannot
    // be read (corrupt, torn, wrong version) counts as a fallback, not as
    // a session that never had one.
    let t0 = Instant::now();
    let snapshot_present = snap_path.exists();
    let snap =
        snapshot::read_snapshot(&snap_path).filter(|s| snapshot_consistent(s, &contents.frames));
    timings.snapshot_load = t0.elapsed();
    let mut snapshot_fallback = snapshot_present && snap.is_none();

    let t0 = Instant::now();
    let replayed = match replay(&config, &contents.frames, snap.as_ref()) {
        Ok(r) => r,
        Err(ReplayFail::Snapshot) => {
            // The snapshot looked consistent but would not install
            // (answer-count mismatch): downgrade to full replay.
            snapshot_fallback = true;
            match replay(&config, &contents.frames, None) {
                Ok(r) => r,
                Err(ReplayFail::Snapshot) => unreachable!("no snapshot in fallback replay"),
                Err(ReplayFail::Stream(e)) => return Err(SessionRecoveryError::Stream(e)),
            }
        }
        Err(ReplayFail::Stream(e)) => return Err(SessionRecoveryError::Stream(e)),
    };
    timings.replay = t0.elapsed();

    Ok(ReplayedSession {
        timings,
        snapshot_used: replayed.snapshot_used,
        snapshot_fallback,
        engine: replayed.engine,
        last_report: replayed.last_report,
        cum_batches: replayed.cum_batches,
        cum_converges: replayed.cum_converges,
        converges_run: replayed.converges_run,
        tail_batches: replayed.tail_batches,
        valid_len: contents.valid_len,
        valid_frames: contents.valid_frames,
        torn: contents.torn,
    })
}

/// Whether a snapshot's recorded position exists in this WAL prefix: its
/// converge count must not exceed the converge frames present (a WAL
/// truncated behind the snapshot makes the snapshot "from the future"),
/// and the converge frame it was taken at must record the same batch
/// count.
fn snapshot_consistent(snap: &SnapshotData, frames: &[Frame]) -> bool {
    if snap.cum_converges == 0 {
        return false;
    }
    let mut converges = 0u64;
    for frame in frames {
        if let Frame::Converge { cum_batches, .. } = frame {
            converges += 1;
            if converges == snap.cum_converges {
                return *cum_batches == snap.cum_batches;
            }
        }
    }
    false
}

struct Replayed {
    engine: StreamEngine,
    last_report: Option<StreamReport>,
    cum_batches: u64,
    cum_converges: u64,
    converges_run: u64,
    snapshot_used: bool,
    tail_batches: Vec<Vec<AnswerRecord>>,
}

/// The replay core: push batch frames in order, and at each converge
/// frame re-run the converge under its logged budget — except over the
/// prefix a valid snapshot covers, where EM is skipped and the warm
/// state is installed at the snapshot point instead. Mirrors the live
/// ingest semantics exactly (`push_batch` partial-apply rejections are
/// deterministic, so a batch that half-applied live half-applies
/// identically here).
fn replay(
    config: &StreamConfig,
    frames: &[Frame],
    snap: Option<&SnapshotData>,
) -> Result<Replayed, ReplayFail> {
    let mut batches: Vec<&Vec<AnswerRecord>> = Vec::new();
    let mut converges: Vec<(u64, u64)> = Vec::new();
    for frame in frames {
        match frame {
            Frame::Batch(records) => batches.push(records),
            Frame::Converge {
                cum_batches,
                budget,
            } => converges.push((*cum_batches, *budget)),
            // `read_wal` never yields a header here (it is stored
            // separately and a second header ends the valid prefix).
            Frame::Header(_) => {}
        }
    }

    let mut engine = StreamEngine::new(config.clone()).map_err(ReplayFail::Stream)?;
    let mut cursor = 0usize;
    let mut last_report = None;
    let mut converges_run = 0u64;
    let mut cum_converges = 0u64;
    let mut snapshot_used = false;

    for (k, &(cum, budget)) in converges.iter().enumerate() {
        // A converge frame referencing batches that are not in the log
        // cannot happen through the writer (batches are appended before
        // their converge marker); treat it as corruption ending the
        // replay here, leaving the rest as tail.
        if cum as usize > batches.len() || (cum as usize) < cursor {
            break;
        }
        while cursor < cum as usize {
            // Mirrors the shard drain: the accepted prefix applies, a
            // rejection stops the batch and the engine stays consistent
            // (the push_batch partial-apply contract).
            let _ = engine.push_batch(batches[cursor]);
            cursor += 1;
        }
        let position = k as u64 + 1;
        if let Some(s) = snap {
            if position < s.cum_converges {
                cum_converges = position;
                continue; // EM skipped: the snapshot covers this point.
            }
            if position == s.cum_converges {
                engine
                    .restore_checkpoint(s.checkpoint.clone())
                    .map_err(|_| ReplayFail::Snapshot)?;
                snapshot_used = true;
                cum_converges = position;
                continue;
            }
        }
        let iterations = usize::try_from(budget).unwrap_or(usize::MAX);
        let report = engine
            .converge_budgeted(ConvergeBudget::iterations(iterations))
            .map_err(ReplayFail::Stream)?;
        last_report = Some(report);
        converges_run += 1;
        cum_converges = position;
    }

    let cum_batches = cursor as u64;
    let tail_batches = batches[cursor..].iter().map(|b| (*b).clone()).collect();
    Ok(Replayed {
        engine,
        last_report,
        cum_batches,
        cum_converges,
        converges_run,
        snapshot_used,
        tail_batches,
    })
}
