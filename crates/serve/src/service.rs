//! The public service API: session lifecycle, the ingest front, drain
//! ticks, reads, and crash recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crowd_core::exec::{JobOutcome, WorkerPool};
use crowd_data::AnswerRecord;
use crowd_stream::{ConvergeBudget, StreamConfig, StreamEngine, StreamReport};

use crate::durable::fault::{splitmix64, FaultPlan};
use crate::durable::wal::WalWriter;
use crate::durable::{self, DurabilityConfig, RecoveryReport};
use crate::obs;
use crate::shard::{
    lock, panic_message, publish_session, DrainCtx, Envelope, SessionSlot, SessionWal, Shard,
    ShardTickStats,
};
use crate::truth::{Published, SnapshotState, TruthReader, TruthSnapshot};
use crate::ServeError;

/// Opaque session identifier, stable for the session's lifetime (and,
/// with durability on, across process restarts — recovery rebuilds a
/// session under its original id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Session shards. Each shard drains on its own pool worker, so this
    /// is the service's ingest/convergence parallelism.
    pub shards: usize,
    /// Per-shard ingest queue capacity, in **answers**. A batch that
    /// would overflow a non-empty queue is rejected with
    /// [`ServeError::Backpressure`]; a batch into an *empty* queue is
    /// always admitted (a single batch larger than the capacity must not
    /// be undeliverable).
    pub queue_capacity: usize,
    /// Per-session EM-iteration budget for one drain tick. Sessions that
    /// exhaust it stay dirty and resume (warm) next tick.
    pub tick_iteration_budget: usize,
    /// Optional per-shard wall-clock deadline for one drain tick; dirty
    /// sessions past it are deferred to the next tick. Checked between
    /// sessions (a single converge is bounded by the iteration budget,
    /// not pre-empted).
    pub tick_deadline: Option<Duration>,
    /// Durability: `Some` enables the per-session write-ahead answer
    /// log, periodic warm-state snapshots, crash recovery via
    /// [`CrowdServe::recover`], and checkpoint auto-restart of poisoned
    /// sessions. `None` (the default) is the pure in-memory service.
    pub durability: Option<DurabilityConfig>,
    /// Deterministic fault injection for chaos testing
    /// ([`FaultPlan::none`] by default — zero-cost on every path).
    pub fault: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: crowd_core::exec::default_threads().clamp(1, 8),
            queue_capacity: 1 << 16,
            tick_iteration_budget: usize::MAX,
            tick_deadline: None,
            durability: None,
            fault: FaultPlan::none(),
        }
    }
}

/// Deterministic-jitter exponential backoff for retrying
/// [`ServeError::Backpressure`] rejections
/// (see [`CrowdServe::submit_with_retry`]).
///
/// The delay for attempt `k` is `base_delay × 2^k`, capped at
/// `max_delay`, scaled by a jitter factor in `[1 − jitter, 1 + jitter]`
/// that is a **pure function of `(seed, k)`** — retry schedules
/// reproduce exactly under a fixed seed, while different seeds decorrelate
/// competing submitters (no thundering-herd re-submission).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total submit attempts (the first try included; 0 behaves as 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (so `delay(0)` follows
    /// the first failure). Pure — the same policy always produces the
    /// same schedule.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(20));
        let capped = exp.min(self.max_delay);
        let h = splitmix64(self.seed ^ 0x6a69_7474 ^ u64::from(attempt));
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * unit - 1.0);
        capped.mul_f64(factor.max(0.0))
    }
}

/// What one [`CrowdServe::drain_tick`] did, aggregated over all shards.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Answers moved from ingest queues into engines.
    pub answers_ingested: usize,
    /// Sessions whose converge met the convergence criterion.
    pub sessions_converged: usize,
    /// Sessions whose converge ran out of iteration budget (they resume
    /// next tick).
    pub sessions_budget_exhausted: usize,
    /// Dirty sessions skipped because the shard's deadline had passed.
    pub sessions_deadline_deferred: usize,
    /// Poisoned sessions auto-restarted from their last checkpoint this
    /// tick (durability only).
    pub sessions_restarted: usize,
    /// Sessions newly poisoned by a converge panic this tick.
    pub poisoned: Vec<SessionId>,
    /// Per-session ingest/converge errors (typed engine rejections, not
    /// panics — those poison), plus durability warnings (wedged WALs,
    /// failed snapshot writes).
    pub errors: Vec<(SessionId, String)>,
    /// Shard drain jobs that failed outside any session's converge
    /// (cancelled pool, top-level panic). Always 0 in healthy operation.
    pub shard_failures: usize,
    /// Wall-clock duration of the whole tick (submit → all shards
    /// joined).
    pub elapsed: Duration,
}

impl TickReport {
    fn merge(&mut self, s: ShardTickStats) {
        self.answers_ingested += s.answers_ingested;
        self.sessions_converged += s.sessions_converged;
        self.sessions_budget_exhausted += s.sessions_budget_exhausted;
        self.sessions_deadline_deferred += s.sessions_deadline_deferred;
        self.sessions_restarted += s.sessions_restarted;
        self.poisoned.extend(s.newly_poisoned);
        self.errors.extend(s.ingest_errors);
    }
}

/// Per-session counters for observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// The session.
    pub session: SessionId,
    /// The shard the session lives on.
    pub shard: usize,
    /// Answers accepted into the engine so far.
    pub answers_seen: usize,
    /// Answers accepted since the last warm converge.
    pub pending_answers: usize,
    /// Warm converges run so far.
    pub converges: usize,
    /// Whether the next drain tick would re-converge this session.
    pub needs_converge: bool,
    /// Whether the session is poisoned.
    pub poisoned: bool,
    /// Checkpoint auto-restarts this session has consumed.
    pub restarts: u32,
}

/// Service-wide counters.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Shards configured.
    pub shards: usize,
    /// Live sessions (including poisoned ones awaiting eviction).
    pub sessions: usize,
    /// Poisoned sessions awaiting restart or eviction.
    pub poisoned_sessions: usize,
    /// Answers currently waiting in ingest queues.
    pub queued_answers: usize,
}

/// Everything a retired session leaves behind.
#[derive(Debug)]
pub struct EvictedSession {
    /// The retired session's id.
    pub session: SessionId,
    /// Total answers the session absorbed.
    pub answers_seen: usize,
    /// Warm converges the session ran.
    pub converges: usize,
    /// The final converged report (after draining pending ingest), or the
    /// last one on record if the final converge was impossible.
    pub final_report: Option<StreamReport>,
    /// The poison message, for sessions that died to a converge panic.
    pub poisoned: Option<String>,
    /// Answers the engine never absorbed: for a poisoned session, every
    /// still-queued answer; for a healthy one, the suffix of any batch
    /// whose ingestion was rejected mid-way (the offending record and
    /// everything after it). Empty in clean evictions — the caller can
    /// always account for every submitted answer as either
    /// `answers_seen` or returned here.
    pub undrained: Vec<AnswerRecord>,
}

/// The multi-session service core. See the crate docs for the
/// architecture; all methods are callable from any thread.
pub struct CrowdServe {
    config: ServeConfig,
    shards: Vec<Arc<Shard>>,
    pool: WorkerPool,
    next_session: AtomicU64,
    /// Published sorted list of live session ids, swapped on
    /// create/evict/recover so [`sessions`](Self::sessions) and
    /// [`stats`](Self::stats) never take a sessions-map lock.
    registry: Published<Vec<SessionId>>,
}

/// Test-only rendezvous for pinning a converge "in flight": the drain
/// worker parks on it (slot lock held) until the test releases it.
/// Compiled only for this crate's tests and under `fault-inject`.
#[cfg(any(test, feature = "fault-inject"))]
#[doc(hidden)]
#[derive(Default)]
pub struct ConvergeGate {
    entered: (Mutex<bool>, std::sync::Condvar),
    release: (Mutex<bool>, std::sync::Condvar),
}

#[cfg(any(test, feature = "fault-inject"))]
impl ConvergeGate {
    /// Drain side: announce entry, then park until released.
    pub(crate) fn park(&self) {
        *lock(&self.entered.0) = true;
        self.entered.1.notify_all();
        let mut released = lock(&self.release.0);
        while !*released {
            released = self
                .release
                .1
                .wait(released)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Test side: block until the converge is parked on the gate.
    pub fn wait_entered(&self) {
        let mut entered = lock(&self.entered.0);
        while !*entered {
            entered = self
                .entered
                .1
                .wait(entered)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Test side: let the parked converge proceed.
    pub fn release(&self) {
        *lock(&self.release.0) = true;
        self.release.1.notify_all();
    }
}

impl CrowdServe {
    /// Build a service with `config.shards` empty shards and a worker
    /// pool sized to drain them all concurrently. With durability
    /// configured, the directory is created (but existing logs are not
    /// read — use [`CrowdServe::recover`] to rebuild sessions).
    pub fn new(config: ServeConfig) -> Result<Self, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::BadConfig {
                detail: "shards must be at least 1".to_string(),
            });
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::BadConfig {
                detail: "queue_capacity must be at least 1 answer".to_string(),
            });
        }
        if config.tick_iteration_budget == 0 {
            return Err(ServeError::BadConfig {
                detail: "tick_iteration_budget must be at least 1 iteration".to_string(),
            });
        }
        if let Some(dur) = &config.durability {
            std::fs::create_dir_all(&dur.dir).map_err(|e| ServeError::BadConfig {
                detail: format!("cannot create durability dir {}: {e}", dur.dir.display()),
            })?;
        }
        let shards = (0..config.shards)
            .map(|i| Arc::new(Shard::new(i)))
            .collect();
        Ok(Self {
            pool: WorkerPool::new(config.shards),
            shards,
            next_session: AtomicU64::new(0),
            registry: Published::new(0, |_| Vec::new()),
            config,
        })
    }

    /// Rebuild a service from the durability directory: every session
    /// with a WAL is recovered from its latest valid snapshot plus WAL
    /// tail replay (full-WAL replay when the snapshot is missing,
    /// corrupt, or inconsistent), torn WAL tails are truncated to the
    /// last valid frame, and batches that were logged but never covered
    /// by a converge frame are re-enqueued onto their shard's ingest
    /// queue (bypassing the capacity check — they were durably
    /// acknowledged and must not be dropped) for the next drain tick.
    ///
    /// Recovery is bit-identical: the rebuilt engines hold exactly the
    /// state replaying the logged answer/converge schedule produces, so
    /// continuing the stream yields the same plurality and posterior
    /// outputs the uninterrupted run would have (property-tested in
    /// `tests/durability.rs`). [`CrowdServe::posteriors`] returns `None`
    /// for a session whose snapshot covered its entire converge history
    /// until the next drain tick converges it again.
    ///
    /// Unrecoverable WALs (no valid header, or a replay-level failure)
    /// are skipped — counted and named in the [`RecoveryReport`], files
    /// left on disk for inspection, their ids never reused.
    pub fn recover(config: ServeConfig) -> Result<(Self, RecoveryReport), ServeError> {
        let Some(dur) = config.durability.clone() else {
            return Err(ServeError::BadConfig {
                detail: "recover requires config.durability".to_string(),
            });
        };
        let serve = Self::new(config)?;
        let mut report = RecoveryReport::default();
        let t_scan = Instant::now();
        let ids = durable::scan_wal_sessions(&dur.dir).map_err(|e| ServeError::Durability {
            session: None,
            detail: format!("cannot scan durability dir {}: {e}", dur.dir.display()),
        })?;
        report.timings.scan = t_scan.elapsed();
        let mut max_id = None;
        let mut recovered_ids: Vec<SessionId> = Vec::new();
        for raw in ids {
            max_id = Some(raw);
            let sid = SessionId::from_raw(raw);
            let r = match durable::recover_session(&dur.dir, raw) {
                Ok(r) => r,
                Err(e) => {
                    report.sessions_skipped += 1;
                    report.skipped.push((sid, e.to_string()));
                    continue;
                }
            };
            if r.torn {
                report.torn_tails_truncated += 1;
            }
            if r.snapshot_used {
                report.snapshots_used += 1;
            }
            if r.snapshot_fallback {
                report.snapshot_fallbacks += 1;
            }
            report.timings.absorb(&r.timings);
            report.converges_replayed += r.converges_run;
            // Reopen the WAL on its valid prefix (this truncates any torn
            // tail) so post-recovery submits extend a clean log.
            let writer = match WalWriter::reopen(
                &durable::wal_path(&dur.dir, raw),
                raw,
                dur.fsync,
                serve.config.fault.clone(),
                r.valid_len,
                r.valid_frames,
            ) {
                Ok(w) => w,
                Err(e) => {
                    report.sessions_skipped += 1;
                    report
                        .skipped
                        .push((sid, format!("wal reopen failed: {e}")));
                    continue;
                }
            };
            let shard = &serve.shards[(raw % serve.shards.len() as u64) as usize];
            lock(&shard.wals).insert(
                raw,
                Arc::new(Mutex::new(SessionWal {
                    writer,
                    batches_appended: r.cum_batches + r.tail_batches.len() as u64,
                    batches_ingested: r.cum_batches,
                    converges_logged: r.cum_converges,
                    converges_since_snapshot: 0,
                    snapshots_written: 0,
                })),
            );
            let mut slot = SessionSlot::new(r.engine);
            slot.last_report = r.last_report;
            slot.batches_ingested = r.cum_batches;
            // Republish the recovered truth, seeding the epoch counter
            // from the durable ingest/converge totals so snapshot epochs
            // keep increasing across the crash (ARCHITECTURE.md § read
            // path) — a reader that outlives the process restart never
            // sees its epoch go backwards.
            let cell = Arc::new(Published::new(r.cum_batches + r.cum_converges, |epoch| {
                crate::shard::snapshot_from_slot(&slot, sid, shard.index, epoch)
            }));
            obs::truth_publishes().inc();
            lock(&shard.truths).insert(raw, cell);
            lock(&shard.sessions).insert(raw, Arc::new(Mutex::new(slot)));
            let t_requeue = Instant::now();
            let mut requeued = 0usize;
            let mut q = lock(&shard.ingest);
            for records in r.tail_batches {
                requeued += records.len();
                q.queued_answers += records.len();
                obs::ingest_queued().add(records.len() as i64);
                q.queue.push_back(Envelope {
                    session: raw,
                    records,
                });
            }
            drop(q);
            shard.queued_answers.fetch_add(requeued, Ordering::SeqCst);
            report.timings.requeue += t_requeue.elapsed();
            report.answers_requeued += requeued;
            report.per_session.push(durable::RecoveredSessionCounts {
                session: sid,
                wal_frames: r.valid_frames,
                wal_bytes: r.valid_len,
                converges_replayed: r.converges_run,
                answers_requeued: requeued,
            });
            obs::recovery_converges_replayed().add(r.converges_run);
            obs::recovery_answers_requeued().add(requeued as u64);
            obs::recovery_wal_frames().add(r.valid_frames);
            obs::recovery_wal_bytes().add(r.valid_len);
            recovered_ids.push(sid);
            report.sessions_recovered += 1;
        }
        recovered_ids.sort_unstable();
        serve.registry.publish_with(move |_, _| recovered_ids);
        obs::recovery_sessions_recovered().add(report.sessions_recovered as u64);
        obs::recovery_sessions_skipped().add(report.sessions_skipped as u64);
        let t = &report.timings;
        for (hist, phase, dt) in [
            (obs::recovery_scan_seconds(), 0u64, t.scan),
            (obs::recovery_snapshot_load_seconds(), 1, t.snapshot_load),
            (obs::recovery_replay_seconds(), 2, t.replay),
            (obs::recovery_requeue_seconds(), 3, t.requeue),
        ] {
            let secs = dt.as_secs_f64();
            hist.record(secs);
            crowd_obs::journal::record(crowd_obs::SpanKind::RecoveryPhase, phase, secs);
        }
        serve
            .next_session
            .store(max_id.map_or(0, |m| m + 1), Ordering::Relaxed);
        Ok((serve, report))
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session is pinned to.
    pub fn shard_of(&self, session: SessionId) -> usize {
        (session.raw() % self.shards.len() as u64) as usize
    }

    /// Ids of every live session, ascending — the way to re-address
    /// sessions after [`CrowdServe::recover`] (ids are stable across
    /// recovery). Served from a published registry snapshot: polling
    /// this never takes a sessions-map lock.
    pub fn sessions(&self) -> Vec<SessionId> {
        self.registry.read().as_ref().clone()
    }

    /// Open a streaming session. The engine validates the config (task
    /// type, method support) exactly as a standalone
    /// [`StreamEngine`](crowd_stream::StreamEngine) would. With
    /// durability on, the session's WAL is created (with the config as
    /// its header frame) before the session is registered — a session
    /// that cannot log is never opened.
    pub fn create_session(&self, config: StreamConfig) -> Result<SessionId, ServeError> {
        let engine = StreamEngine::new(config.clone())?;
        let raw = self.next_session.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(raw % self.shards.len() as u64) as usize];
        if let Some(dur) = &self.config.durability {
            let writer = WalWriter::create(
                &durable::wal_path(&dur.dir, raw),
                raw,
                dur.fsync,
                self.config.fault.clone(),
                &config,
            )
            .map_err(|e| ServeError::Durability {
                session: Some(SessionId::from_raw(raw)),
                detail: format!("wal create failed: {e}"),
            })?;
            lock(&shard.wals).insert(
                raw,
                Arc::new(Mutex::new(SessionWal {
                    writer,
                    batches_appended: 0,
                    batches_ingested: 0,
                    converges_logged: 0,
                    converges_since_snapshot: 0,
                    snapshots_written: 0,
                })),
            );
        }
        let sid = SessionId::from_raw(raw);
        let slot = SessionSlot::new(engine);
        // Publish the session's first truth snapshot (epoch 1) before it
        // is registered: a reader can never observe an empty cell.
        let cell = Arc::new(Published::new(0, |epoch| {
            crate::shard::snapshot_from_slot(&slot, sid, shard.index, epoch)
        }));
        obs::truth_publishes().inc();
        lock(&shard.truths).insert(raw, cell);
        lock(&shard.sessions).insert(raw, Arc::new(Mutex::new(slot)));
        self.registry.publish_with(|prior, _| {
            let mut ids = prior.clone();
            let at = ids.partition_point(|&s| s < sid);
            ids.insert(at, sid);
            ids
        });
        Ok(sid)
    }

    /// Enqueue an answer batch for `session` — the async-style ingest
    /// front. Returns as soon as the batch is on the owning shard's
    /// bounded queue; no inference runs here, and validation happens at
    /// drain time (per-record, engine untouched on rejection). A full
    /// queue returns [`ServeError::Backpressure`] without enqueuing.
    ///
    /// With durability on this is a **write-ahead** step: the batch is
    /// appended (and, per [`FsyncPolicy`](crate::FsyncPolicy), fsynced)
    /// to the session's WAL before it is enqueued, so an acknowledged
    /// submit survives a crash. The append and the enqueue are atomic
    /// with respect to failure: on any error (including
    /// [`ServeError::Durability`]) the batch is neither logged nor
    /// queued — a frame on disk and a batch in the queue always
    /// correspond one-to-one.
    pub fn submit(&self, session: SessionId, records: Vec<AnswerRecord>) -> Result<(), ServeError> {
        if records.is_empty() {
            return Ok(());
        }
        let shard_idx = self.shard_of(session);
        let shard = &self.shards[shard_idx];
        {
            let Some(slot) = shard.slot(session.raw()) else {
                return Err(ServeError::UnknownSession(session));
            };
            if lock(&slot).poisoned.is_some() {
                return Err(ServeError::SessionPoisoned(session));
            }
        }
        // Lock order: wal → ingest. Both are held across the append so
        // the capacity check, the WAL frame, and the enqueue are one
        // atomic step (a backpressure rejection must not leave a frame
        // behind for recovery to resurrect).
        let wal = if self.config.durability.is_some() {
            Some(
                shard
                    .wal(session.raw())
                    .ok_or(ServeError::UnknownSession(session))?,
            )
        } else {
            None
        };
        let mut wal_guard = wal.as_ref().map(|w| lock(w));
        if let Some(w) = wal_guard.as_deref() {
            if let Some(why) = w.writer.broken() {
                return Err(ServeError::Durability {
                    session: Some(session),
                    detail: format!("wal is wedged ({why}); restart or evict the session"),
                });
            }
        }
        let mut q = lock(&shard.ingest);
        if q.queued_answers > 0 && q.queued_answers + records.len() > self.config.queue_capacity {
            obs::ingest_backpressure().inc();
            crowd_obs::journal::record(crowd_obs::SpanKind::BackpressureReject, session.raw(), 0.0);
            return Err(ServeError::Backpressure {
                session,
                shard: shard_idx,
                queued_answers: q.queued_answers,
                capacity: self.config.queue_capacity,
            });
        }
        if let Some(w) = wal_guard.as_deref_mut() {
            w.writer
                .append_batch(&records)
                .map_err(|e| ServeError::Durability {
                    session: Some(session),
                    detail: format!("wal append failed: {e}"),
                })?;
            w.batches_appended += 1;
        }
        obs::ingest_batches().inc();
        obs::ingest_answers().add(records.len() as u64);
        obs::ingest_queued().add(records.len() as i64);
        shard
            .queued_answers
            .fetch_add(records.len(), Ordering::SeqCst);
        q.queued_answers += records.len();
        q.queue.push_back(Envelope {
            session: session.raw(),
            records,
        });
        Ok(())
    }

    /// [`submit`](Self::submit) with deterministic-jitter exponential
    /// backoff on [`ServeError::Backpressure`]: the batch is retried up
    /// to `policy.max_attempts` times, sleeping `policy.delay(k)`
    /// between attempts (some other thread must be running drain ticks
    /// for the queue to empty). Every other error — unknown session,
    /// poisoned, durability — is returned immediately; when the
    /// attempts run out the last backpressure error comes back wrapped
    /// in [`ServeError::RetriesExhausted`]. The batch is never
    /// partially submitted.
    pub fn submit_with_retry(
        &self,
        session: SessionId,
        records: Vec<AnswerRecord>,
        policy: &RetryPolicy,
    ) -> Result<(), ServeError> {
        let attempts = policy.max_attempts.max(1);
        let mut records = records;
        for attempt in 0..attempts {
            let last = attempt + 1 == attempts;
            let batch = if last {
                std::mem::take(&mut records)
            } else {
                records.clone()
            };
            match self.submit(session, batch) {
                Ok(()) => return Ok(()),
                Err(e @ ServeError::Backpressure { .. }) => {
                    if last {
                        return Err(ServeError::RetriesExhausted {
                            session,
                            attempts,
                            last_error: Box::new(e),
                        });
                    }
                    std::thread::sleep(policy.delay(attempt));
                }
                Err(other) => return Err(other),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Run one drain tick: one job per shard is submitted to the worker
    /// pool's from-any-thread queue, each shard ingests its queued
    /// batches and re-converges its dirty sessions under the configured
    /// budget, and the merged [`TickReport`] is returned once every shard
    /// has finished. With durability on, the tick also restarts poisoned
    /// sessions from checkpoint, logs converge frames, and writes
    /// snapshots on cadence.
    pub fn drain_tick(&self) -> TickReport {
        let started = Instant::now();
        let budget = ConvergeBudget::iterations(self.config.tick_iteration_budget);
        let deadline = self.config.tick_deadline;
        let ctx = DrainCtx {
            durability: self.config.durability.clone(),
            fault: self.config.fault.clone(),
        };
        let mut report = TickReport::default();

        if self.shards.len() == 1 {
            // One shard: drain inline, no dispatch latency.
            report.merge(self.shards[0].drain(budget, deadline, &ctx));
        } else {
            // Each job reports through its own slot (not shared shard
            // state), so concurrent drain_tick callers cannot steal or
            // clobber each other's statistics.
            let tickets: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let shard = Arc::clone(shard);
                    let ctx = ctx.clone();
                    let out = Arc::new(Mutex::new(None::<ShardTickStats>));
                    let out_job = Arc::clone(&out);
                    let ticket = self.pool.submit(move || {
                        *lock(&out_job) = Some(shard.drain(budget, deadline, &ctx));
                    });
                    (ticket, out)
                })
                .collect();
            for (ticket, out) in tickets {
                match ticket.join() {
                    JobOutcome::Completed => {
                        report.merge(lock(&out).take().unwrap_or_default());
                    }
                    JobOutcome::Panicked(_) | JobOutcome::Cancelled => {
                        report.shard_failures += 1;
                    }
                }
            }
        }
        report.elapsed = started.elapsed();
        report
    }

    /// A clonable, `Send + Sync` [`TruthReader`] handle for polling
    /// `session`'s published [`TruthSnapshot`] — the wait-free read
    /// path. The handle outlives poisoning, checkpoint restarts, and
    /// even eviction: instead of erroring mid-poll, its snapshots
    /// degrade to the typed [`SnapshotState::SnapshotStale`] /
    /// [`SnapshotState::SessionGone`] states.
    ///
    /// Clone the handle per polling thread (each clone owns its hazard
    /// slot); [`TruthReader::snapshot`] then never takes any service
    /// lock — it completes in sub-microsecond time while the session's
    /// own converge is in flight (`tests/read_path.rs`, and measured by
    /// `crowd-serve-bench --mode mixed`).
    pub fn reader(&self, session: SessionId) -> Result<TruthReader, ServeError> {
        let cell = self.shards[self.shard_of(session)]
            .truth(session.raw())
            .ok_or(ServeError::UnknownSession(session))?;
        Ok(TruthReader::new(session, cell))
    }

    /// The current published [`TruthSnapshot`] for `session` — one
    /// coherent read replacing the deprecated
    /// [`plurality`](Self::plurality) / [`posteriors`](Self::posteriors)
    /// / [`last_report`](Self::last_report) /
    /// [`session_stats`](Self::session_stats) quartet: every field comes
    /// from the same publish epoch, so they can never disagree about
    /// which tick they describe.
    ///
    /// This entry point does one brief cell lookup (a map lock, never a
    /// session slot lock) and then a wait-free pointer load; it never
    /// waits for ingest or converge work. For a polling loop, take a
    /// [`reader`](Self::reader) handle instead and skip the lookup too.
    /// Returns [`ServeError::UnknownSession`] once the session has been
    /// evicted (a [`TruthReader`] held across the eviction keeps
    /// serving the terminal [`SnapshotState::SessionGone`] snapshot).
    pub fn truth(&self, session: SessionId) -> Result<Arc<TruthSnapshot>, ServeError> {
        let cell = self.shards[self.shard_of(session)]
            .truth(session.raw())
            .ok_or(ServeError::UnknownSession(session))?;
        let timer = obs::truth_read_seconds().start_timer();
        let snap = cell.read();
        timer.stop();
        obs::truth_reads().inc();
        Ok(snap)
    }

    /// Live per-task plurality estimates for `session`, as of the last
    /// drain tick that touched it.
    #[deprecated(
        note = "read TruthSnapshot::plurality via CrowdServe::truth or CrowdServe::reader — \
                one snapshot carries plurality, posteriors, report, and stats from the same epoch"
    )]
    pub fn plurality(&self, session: SessionId) -> Result<Vec<Option<u8>>, ServeError> {
        let snap = self.truth(session)?;
        if snap.state.is_stale() {
            return Err(ServeError::SessionPoisoned(session));
        }
        Ok(snap.plurality.clone())
    }

    /// The latest drained per-task posteriors for `session` (`None`
    /// before the first converge).
    #[deprecated(
        note = "read TruthSnapshot::posteriors via CrowdServe::truth or CrowdServe::reader — \
                one snapshot carries plurality, posteriors, report, and stats from the same epoch"
    )]
    #[allow(clippy::type_complexity)]
    pub fn posteriors(&self, session: SessionId) -> Result<Option<Vec<Vec<f64>>>, ServeError> {
        let snap = self.truth(session)?;
        if snap.state.is_stale() {
            return Err(ServeError::SessionPoisoned(session));
        }
        Ok(snap.posteriors().map(<[Vec<f64>]>::to_vec))
    }

    /// The latest drain-tick report for `session` (`None` before the
    /// first converge). `result.converged` distinguishes a reached fixed
    /// point from a budget-sliced snapshot still resuming across ticks.
    #[deprecated(
        note = "read TruthSnapshot::report via CrowdServe::truth or CrowdServe::reader — \
                one snapshot carries plurality, posteriors, report, and stats from the same epoch"
    )]
    pub fn last_report(&self, session: SessionId) -> Result<Option<StreamReport>, ServeError> {
        let snap = self.truth(session)?;
        if snap.state.is_stale() {
            return Err(ServeError::SessionPoisoned(session));
        }
        Ok(snap.report.clone())
    }

    /// Per-session counters. Works on poisoned sessions too (that is the
    /// point of observability).
    #[deprecated(
        note = "read TruthSnapshot::stats via CrowdServe::truth or CrowdServe::reader — \
                one snapshot carries plurality, posteriors, report, and stats from the same epoch"
    )]
    pub fn session_stats(&self, session: SessionId) -> Result<SessionStats, ServeError> {
        Ok(self.truth(session)?.stats.clone())
    }

    /// Service-wide counters, served wait-free from the published
    /// session registry and per-shard atomic mirrors — polling this
    /// takes no sessions-map, slot, or queue lock.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            shards: self.shards.len(),
            sessions: self.registry.read().len(),
            poisoned_sessions: self
                .shards
                .iter()
                .map(|s| s.poisoned_sessions.load(Ordering::SeqCst))
                .sum(),
            queued_answers: self
                .shards
                .iter()
                .map(|s| s.queued_answers.load(Ordering::SeqCst))
                .sum(),
        }
    }

    /// Gracefully retire a session: its still-queued batches are pulled
    /// out of the shard's ingest queue and applied, a final unbudgeted
    /// converge runs (if the session is dirty and healthy), and the slot
    /// is removed. Poisoned sessions are evicted without touching the
    /// engine — their last good report and poison message come back in
    /// the [`EvictedSession`], and every answer the engine never
    /// absorbed (queued batches for a poisoned session, rejected-batch
    /// suffixes for a healthy one) is surfaced in
    /// [`EvictedSession::undrained`] rather than dropped.
    ///
    /// With durability on, the session's WAL and snapshot files are
    /// deleted — the caller received the final state, and a later
    /// [`recover`](Self::recover) must not resurrect the session.
    pub fn evict(&self, session: SessionId) -> Result<EvictedSession, ServeError> {
        let shard = &self.shards[self.shard_of(session)];
        // Serialise against whole drain ticks on this shard: an eviction
        // must see either the pre-drain queue (and pull its envelopes
        // below) or the post-drain engines — never a drain that has
        // stolen the queue but not yet applied it, which would silently
        // drop the session's submitted batches from its final state.
        let _gate = lock(&shard.drain_gate);

        // Pull this session's pending envelopes (preserving their order)
        // out of the ingest queue.
        let pending: Vec<Envelope> = {
            let mut q = lock(&shard.ingest);
            let (mine, rest): (Vec<Envelope>, Vec<Envelope>) = q
                .queue
                .drain(..)
                .partition(|env| env.session == session.raw());
            q.queue = rest.into();
            q.queued_answers = q.queue.iter().map(|e| e.records.len()).sum();
            mine
        };
        let pulled: usize = pending.iter().map(|e| e.records.len()).sum();
        obs::ingest_queued().add(-(pulled as i64));
        shard.queued_answers.fetch_sub(pulled, Ordering::SeqCst);

        let slot = lock(&shard.sessions)
            .remove(&session.raw())
            .ok_or(ServeError::UnknownSession(session))?;
        let wal = lock(&shard.wals).remove(&session.raw());
        let mut slot = lock(&slot);
        if slot.poisoned.is_some() {
            shard.poisoned_sessions.fetch_sub(1, Ordering::SeqCst);
        }

        let mut undrained = Vec::new();
        if slot.poisoned.is_none() {
            for env in pending {
                match slot.engine.push_batch(&env.records) {
                    Ok(_) => {}
                    // The partial-apply contract: 0..accepted applied,
                    // the rest (offending record included) untouched —
                    // surface it instead of dropping it.
                    Err((accepted, _)) => undrained.extend_from_slice(&env.records[accepted..]),
                }
            }
            if slot.engine.needs_converge() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    slot.engine.converge()
                }));
                match outcome {
                    Ok(Ok(report)) => slot.last_report = Some(report),
                    Ok(Err(_)) => {} // e.g. empty stream: keep last_report
                    Err(payload) => slot.poisoned = Some(panic_message(payload.as_ref())),
                }
            }
        } else {
            for env in pending {
                undrained.extend(env.records);
            }
        }

        if let Some(dur) = &self.config.durability {
            // Close the file handle before unlinking.
            drop(wal);
            let _ = std::fs::remove_file(durable::wal_path(&dur.dir, session.raw()));
            let _ = std::fs::remove_file(durable::snapshot_path(&dur.dir, session.raw()));
        }

        // Publish the terminal snapshot (carrying the session's final
        // state) before the cell leaves the truths map: readers holding
        // a TruthReader across the eviction land on `SessionGone` with
        // the last truths intact, never on a torn or vanished cell.
        if let Some(cell) = lock(&shard.truths).remove(&session.raw()) {
            publish_session(
                &cell,
                &slot,
                session,
                shard.index,
                Some(SnapshotState::SessionGone),
            );
        }
        self.registry.publish_with(move |prior, _| {
            let mut next = prior.clone();
            next.retain(|&s| s != session);
            next
        });

        Ok(EvictedSession {
            session,
            answers_seen: slot.engine.answers_seen(),
            converges: slot.engine.converges(),
            final_report: slot.last_report.take(),
            poisoned: slot.poisoned.take(),
            undrained,
        })
    }

    /// Compact every session's delta views now (drain ticks do this
    /// lazily per converge) — a maintenance hook for idle periods.
    pub fn compact_all(&self) {
        for shard in &self.shards {
            let slots: Vec<_> = lock(&shard.sessions).values().cloned().collect();
            for slot in slots {
                let mut slot = lock(&slot);
                if slot.poisoned.is_none() {
                    slot.engine.compact();
                }
            }
        }
    }

    /// Test-only fault injection: make the next converge on `session`
    /// panic inside the drain tick. Compiled only for this crate's own
    /// tests and under the `fault-inject` feature — the production API
    /// surface cannot poison sessions; chaos tests configure a seeded
    /// [`FaultPlan`] on [`ServeConfig`] instead.
    #[cfg(any(test, feature = "fault-inject"))]
    #[doc(hidden)]
    pub fn debug_panic_next_converge(&self, session: SessionId) -> Result<(), ServeError> {
        let slot = self.shards[self.shard_of(session)]
            .slot(session.raw())
            .ok_or(ServeError::UnknownSession(session))?;
        lock(&slot).debug_panic_next_converge = true;
        Ok(())
    }

    /// Test-only fault injection: make the next converge on `session`
    /// park on `gate` inside the drain tick, holding the session slot
    /// lock until the test calls [`ConvergeGate::release`]. This is how
    /// the wait-free claim is tested: with a converge deliberately
    /// wedged mid-tick, reader snapshots must still complete instantly.
    #[cfg(any(test, feature = "fault-inject"))]
    #[doc(hidden)]
    pub fn debug_block_next_converge(
        &self,
        session: SessionId,
        gate: Arc<ConvergeGate>,
    ) -> Result<(), ServeError> {
        let slot = self.shards[self.shard_of(session)]
            .slot(session.raw())
            .ok_or(ServeError::UnknownSession(session))?;
        lock(&slot).debug_block_next_converge = Some(gate);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::Method;
    use crowd_data::{Answer, TaskType};

    fn decision_session(n: usize, m: usize) -> StreamConfig {
        StreamConfig::new(Method::Mv, TaskType::DecisionMaking, n, m)
    }

    fn rec(task: usize, worker: usize, label: u8) -> AnswerRecord {
        AnswerRecord {
            task,
            worker,
            answer: Answer::Label(label),
        }
    }

    #[test]
    fn config_validation() {
        for (cfg, needle) in [
            (
                ServeConfig {
                    shards: 0,
                    ..ServeConfig::default()
                },
                "shards",
            ),
            (
                ServeConfig {
                    queue_capacity: 0,
                    ..ServeConfig::default()
                },
                "queue_capacity",
            ),
            (
                ServeConfig {
                    tick_iteration_budget: 0,
                    ..ServeConfig::default()
                },
                "tick_iteration_budget",
            ),
        ] {
            match CrowdServe::new(cfg) {
                Err(ServeError::BadConfig { detail }) => assert!(detail.contains(needle)),
                other => panic!("expected BadConfig, got {other:?}", other = other.is_ok()),
            }
        }
    }

    #[test]
    fn sessions_round_robin_over_shards() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        })
        .unwrap();
        let ids: Vec<SessionId> = (0..6)
            .map(|_| serve.create_session(decision_session(4, 3)).unwrap())
            .collect();
        let shards: Vec<usize> = ids.iter().map(|&s| serve.shard_of(s)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(serve.stats().sessions, 6);
    }

    #[test]
    fn submit_drain_read_roundtrip() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(3, 3)).unwrap();
        serve
            .submit(sid, vec![rec(0, 0, 1), rec(0, 1, 1), rec(1, 0, 0)])
            .unwrap();
        // Nothing ingested until the tick — the published snapshot still
        // describes the empty session.
        assert_eq!(serve.truth(sid).unwrap().stats.answers_seen, 0);
        assert_eq!(serve.stats().queued_answers, 3);
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 3);
        assert_eq!(tick.sessions_converged, 1);
        assert_eq!(tick.shard_failures, 0);
        assert!(tick.errors.is_empty());
        let snap = serve.truth(sid).unwrap();
        assert_eq!(snap.plurality, vec![Some(1), Some(0), None]);
        let report = snap.report.as_ref().unwrap();
        assert_eq!(report.answers_seen, 3);
        assert!(report.result.converged);
    }

    #[test]
    fn unknown_and_empty_submissions() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(2, 2)).unwrap();
        // Empty batch is a no-op, not an error.
        serve.submit(sid, vec![]).unwrap();
        assert_eq!(serve.stats().queued_answers, 0);
        let ghost = SessionId::from_raw(999);
        assert!(matches!(
            serve.submit(ghost, vec![rec(0, 0, 1)]),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            serve.truth(ghost),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            serve.reader(ghost),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            serve.evict(ghost),
            Err(ServeError::UnknownSession(_))
        ));
    }

    #[test]
    fn backpressure_is_typed_and_non_lossy() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(10, 10)).unwrap();
        serve
            .submit(sid, vec![rec(0, 0, 1), rec(1, 0, 1), rec(2, 0, 1)])
            .unwrap();
        // 3 queued; 2 more would exceed capacity 4 → backpressure.
        let err = serve
            .submit(sid, vec![rec(3, 0, 1), rec(4, 0, 1)])
            .unwrap_err();
        match err {
            ServeError::Backpressure {
                queued_answers,
                capacity,
                ..
            } => {
                assert_eq!(queued_answers, 3);
                assert_eq!(capacity, 4);
            }
            other => panic!("expected backpressure, got {other}"),
        }
        // One more answer fits exactly.
        serve.submit(sid, vec![rec(3, 0, 1)]).unwrap();
        // After a drain the queue is empty again and accepts batches —
        // even one larger than capacity, since the queue is empty.
        serve.drain_tick();
        serve
            .submit(
                sid,
                vec![
                    rec(4, 0, 1),
                    rec(5, 0, 1),
                    rec(6, 0, 1),
                    rec(7, 0, 1),
                    rec(8, 0, 1),
                    rec(9, 0, 1),
                ],
            )
            .unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 6);
        assert_eq!(serve.truth(sid).unwrap().stats.answers_seen, 10);
    }

    #[test]
    fn retry_policy_delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            jitter: 0.25,
            seed: 42,
        };
        let a: Vec<Duration> = (0..6).map(|k| policy.delay(k)).collect();
        let b: Vec<Duration> = (0..6).map(|k| policy.delay(k)).collect();
        assert_eq!(a, b, "same policy, same schedule");
        for (k, d) in a.iter().enumerate() {
            let nominal = Duration::from_millis(2u64 << k).min(Duration::from_millis(50));
            let lo = nominal.mul_f64(0.75);
            let hi = nominal.mul_f64(1.25);
            assert!(
                (lo..=hi).contains(d),
                "delay({k}) = {d:?} outside [{lo:?}, {hi:?}]"
            );
        }
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(
            (0..6).map(|k| other.delay(k)).collect::<Vec<_>>(),
            a,
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn submit_with_retry_exhausts_on_persistent_backpressure() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(8, 8)).unwrap();
        serve.submit(sid, vec![rec(0, 0, 1), rec(1, 0, 1)]).unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        };
        // Nobody drains: every retry hits backpressure.
        let err = serve
            .submit_with_retry(sid, vec![rec(2, 0, 1), rec(3, 0, 1)], &policy)
            .unwrap_err();
        match err {
            ServeError::RetriesExhausted {
                session,
                attempts,
                last_error,
            } => {
                assert_eq!(session, sid);
                assert_eq!(attempts, 3);
                assert!(matches!(*last_error, ServeError::Backpressure { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        // The failed batch was never partially enqueued.
        assert_eq!(serve.stats().queued_answers, 2);
        // After a drain, the same submit succeeds on the first retry.
        serve.drain_tick();
        serve
            .submit_with_retry(sid, vec![rec(2, 0, 1), rec(3, 0, 1)], &policy)
            .unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 2);
    }

    #[test]
    fn invalid_records_surface_in_tick_report_without_killing_session() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(2, 2)).unwrap();
        // Second record is out of range; first is accepted, batch stops.
        serve
            .submit(sid, vec![rec(0, 0, 1), rec(7, 0, 1), rec(1, 1, 0)])
            .unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 1);
        assert_eq!(tick.errors.len(), 1);
        assert!(tick.errors[0].1.contains("out of range"));
        // Session is alive and serving.
        assert_eq!(serve.truth(sid).unwrap().plurality[0], Some(1));
        serve.submit(sid, vec![rec(1, 1, 0)]).unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 1);
        assert!(tick.errors.is_empty());
    }

    #[test]
    fn eviction_drains_pending_ingest_and_finalises() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(3, 3)).unwrap();
        let other = serve.create_session(decision_session(3, 3)).unwrap();
        serve.submit(sid, vec![rec(0, 0, 1), rec(1, 0, 0)]).unwrap();
        serve.submit(other, vec![rec(2, 2, 1)]).unwrap();
        // Evict before any tick: the queued batch must still count.
        let evicted = serve.evict(sid).unwrap();
        assert_eq!(evicted.answers_seen, 2);
        assert!(evicted.poisoned.is_none());
        assert!(evicted.undrained.is_empty());
        let report = evicted.final_report.expect("final converge ran");
        assert_eq!(report.answers_seen, 2);
        assert!(matches!(
            serve.truth(sid),
            Err(ServeError::UnknownSession(_))
        ));
        // The sibling session's queued batch survived the queue surgery.
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 1);
        assert_eq!(serve.truth(other).unwrap().stats.answers_seen, 1);
    }

    #[test]
    fn poisoned_eviction_surfaces_undrained_answers() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(4, 4)).unwrap();
        serve.submit(sid, vec![rec(0, 0, 1)]).unwrap();
        serve.drain_tick();
        serve.debug_panic_next_converge(sid).unwrap();
        serve.submit(sid, vec![rec(1, 1, 1)]).unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.poisoned, vec![sid]);
        // Queued after poisoning: these answers never reach the engine.
        // (Submit refuses on a poisoned session, so enqueue through the
        // pre-poison path: the batch above was ingested before the panic;
        // queue one more via a fresh submit attempt — which must fail —
        // then verify the evicted payload accounts for every answer.)
        assert!(matches!(
            serve.submit(sid, vec![rec(2, 2, 1)]),
            Err(ServeError::SessionPoisoned(_))
        ));
        let evicted = serve.evict(sid).unwrap();
        assert_eq!(evicted.answers_seen, 2);
        assert!(evicted.poisoned.is_some());
        assert!(evicted.undrained.is_empty());
    }

    #[test]
    fn healthy_eviction_surfaces_rejected_batch_suffix() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(2, 2)).unwrap();
        // Second record is out of range: at eviction the engine keeps the
        // first and the rest must come back in `undrained`.
        serve
            .submit(sid, vec![rec(0, 0, 1), rec(9, 0, 1), rec(1, 1, 0)])
            .unwrap();
        let evicted = serve.evict(sid).unwrap();
        assert_eq!(evicted.answers_seen, 1);
        assert_eq!(evicted.undrained, vec![rec(9, 0, 1), rec(1, 1, 0)]);
    }

    #[test]
    fn concurrent_drain_ticks_conserve_statistics() {
        // drain_tick is callable from any thread; two overlapping ticks
        // must neither lose nor double-count ingested answers (each tick
        // reports through its own per-job slot, and batches are ingested
        // exactly once whichever tick drains them).
        let serve = CrowdServe::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let sids: Vec<SessionId> = (0..4)
            .map(|_| serve.create_session(decision_session(8, 8)).unwrap())
            .collect();
        for round in 0..4 {
            for (k, &sid) in sids.iter().enumerate() {
                serve
                    .submit(sid, vec![rec(round, k % 8, 1), rec(4 + round, k % 8, 0)])
                    .unwrap();
            }
            let reports: Vec<TickReport> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..2).map(|_| scope.spawn(|| serve.drain_tick())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let ingested: usize = reports.iter().map(|r| r.answers_ingested).sum();
            assert_eq!(ingested, 8, "round {round}: {reports:?}");
            assert!(reports.iter().all(|r| r.shard_failures == 0));
        }
        for &sid in &sids {
            assert_eq!(serve.truth(sid).unwrap().stats.answers_seen, 8);
        }
    }

    #[test]
    fn deadline_defers_sessions_to_the_next_tick() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            tick_deadline: Some(Duration::ZERO),
            ..ServeConfig::default()
        })
        .unwrap();
        let a = serve.create_session(decision_session(2, 2)).unwrap();
        let b = serve.create_session(decision_session(2, 2)).unwrap();
        serve.submit(a, vec![rec(0, 0, 1)]).unwrap();
        serve.submit(b, vec![rec(0, 1, 1)]).unwrap();
        // Deadline ZERO: ingest happens, but every converge is deferred.
        let tick = serve.drain_tick();
        assert_eq!(tick.answers_ingested, 2);
        assert_eq!(tick.sessions_converged, 0);
        assert_eq!(tick.sessions_deadline_deferred, 2);
        let snap = serve.truth(a).unwrap();
        assert!(snap.stats.needs_converge);
        assert!(snap.report.is_none());
    }

    #[test]
    fn wedged_converge_never_stalls_readers_or_stats() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(3, 3)).unwrap();
        serve.submit(sid, vec![rec(0, 0, 1)]).unwrap();
        serve.drain_tick();
        let reader = serve.reader(sid).unwrap();
        let epoch_before = reader.snapshot().epoch;

        let gate = Arc::new(ConvergeGate::default());
        serve
            .debug_block_next_converge(sid, Arc::clone(&gate))
            .unwrap();
        serve.submit(sid, vec![rec(1, 1, 1)]).unwrap();
        std::thread::scope(|scope| {
            let tick = scope.spawn(|| serve.drain_tick());
            gate.wait_entered();
            // The session's own converge is now wedged mid-tick, holding
            // the slot lock. A lock-taking reader would hang here until
            // the release below; the published-snapshot path must finish
            // every read immediately — and so must the registry-backed
            // service-wide getters.
            let start = Instant::now();
            for _ in 0..1_000 {
                let snap = reader.snapshot();
                assert_eq!(snap.epoch, epoch_before, "no publish while wedged");
                assert!(snap.state.is_live());
            }
            let elapsed = start.elapsed();
            assert_eq!(serve.stats().sessions, 1);
            assert_eq!(serve.stats().queued_answers, 0, "already ingested");
            assert_eq!(serve.sessions(), vec![sid]);
            assert!(
                elapsed < Duration::from_secs(1),
                "1000 reads against a wedged converge took {elapsed:?}"
            );
            gate.release();
            let tick = tick.join().unwrap();
            assert_eq!(tick.answers_ingested, 1);
            assert_eq!(tick.sessions_converged, 1);
        });
        let snap = reader.snapshot();
        assert!(snap.epoch > epoch_before, "tick end published");
        assert_eq!(snap.stats.answers_seen, 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_preserve_their_contracts() {
        let serve = CrowdServe::new(ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let sid = serve.create_session(decision_session(2, 2)).unwrap();
        serve.submit(sid, vec![rec(0, 0, 1), rec(1, 1, 0)]).unwrap();
        serve.drain_tick();

        // Healthy: every wrapper serves the same truths as the snapshot.
        let snap = serve.truth(sid).unwrap();
        assert_eq!(serve.plurality(sid).unwrap(), snap.plurality);
        assert_eq!(serve.posteriors(sid).unwrap().as_deref(), snap.posteriors());
        assert_eq!(
            serve.last_report(sid).unwrap().map(|r| r.answers_seen),
            snap.report.as_ref().map(|r| r.answers_seen)
        );
        assert_eq!(serve.session_stats(sid).unwrap(), snap.stats);

        // Unknown session: typed, as before.
        let ghost = SessionId::from_raw(999);
        assert!(matches!(
            serve.plurality(ghost),
            Err(ServeError::UnknownSession(_))
        ));
        assert!(matches!(
            serve.session_stats(ghost),
            Err(ServeError::UnknownSession(_))
        ));

        // Poisoned: the value getters keep failing typed; session_stats
        // keeps working (that is the point of observability).
        serve.debug_panic_next_converge(sid).unwrap();
        serve.submit(sid, vec![rec(0, 1, 1)]).unwrap();
        let tick = serve.drain_tick();
        assert_eq!(tick.poisoned, vec![sid]);
        assert!(matches!(
            serve.plurality(sid),
            Err(ServeError::SessionPoisoned(_))
        ));
        assert!(matches!(
            serve.posteriors(sid),
            Err(ServeError::SessionPoisoned(_))
        ));
        assert!(matches!(
            serve.last_report(sid),
            Err(ServeError::SessionPoisoned(_))
        ));
        let stats = serve.session_stats(sid).unwrap();
        assert!(stats.poisoned);
        // The batch was ingested before the converge panicked.
        assert_eq!(stats.answers_seen, 3, "pre-panic counters still served");
    }
}
