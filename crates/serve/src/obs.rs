//! Cached `serve.*` metric handles (see ARCHITECTURE.md § Observability
//! for the naming scheme). Registration happens once per process via
//! `OnceLock`; every hot-path use after that is a couple of atomic ops.

use std::sync::OnceLock;

macro_rules! handle {
    ($fn_name:ident, counter, $name:literal) => {
        pub(crate) fn $fn_name() -> &'static crowd_obs::Counter {
            static H: OnceLock<crowd_obs::Counter> = OnceLock::new();
            H.get_or_init(|| crowd_obs::counter($name))
        }
    };
    ($fn_name:ident, gauge, $name:literal) => {
        pub(crate) fn $fn_name() -> &'static crowd_obs::Gauge {
            static H: OnceLock<crowd_obs::Gauge> = OnceLock::new();
            H.get_or_init(|| crowd_obs::gauge($name))
        }
    };
    ($fn_name:ident, histogram, $name:literal) => {
        pub(crate) fn $fn_name() -> &'static crowd_obs::Histogram {
            static H: OnceLock<crowd_obs::Histogram> = OnceLock::new();
            H.get_or_init(|| crowd_obs::histogram($name))
        }
    };
}

// Ingest front.
handle!(ingest_batches, counter, "serve.ingest.batches_total");
handle!(ingest_answers, counter, "serve.ingest.answers_total");
handle!(
    ingest_backpressure,
    counter,
    "serve.ingest.backpressure_rejects_total"
);
handle!(ingest_queued, gauge, "serve.ingest.queued_answers");

// Shard drain ticks.
handle!(shard_tick_seconds, histogram, "serve.shard.tick_seconds");
handle!(
    shard_answers_ingested,
    counter,
    "serve.shard.answers_ingested_total"
);
handle!(
    shard_sessions_converged,
    counter,
    "serve.shard.sessions_converged_total"
);
handle!(
    shard_budget_exhausted,
    counter,
    "serve.shard.budget_exhausted_total"
);
handle!(
    shard_deadline_deferred,
    counter,
    "serve.shard.deadline_deferred_total"
);
handle!(
    shard_poisoned,
    counter,
    "serve.shard.sessions_poisoned_total"
);
handle!(
    shard_restarts,
    counter,
    "serve.shard.session_restarts_total"
);

// Write-ahead log.
handle!(wal_append_seconds, histogram, "serve.wal.append_seconds");
handle!(wal_appends, counter, "serve.wal.appends_total");
handle!(wal_fsync_seconds, histogram, "serve.wal.fsync_seconds");
handle!(wal_fsyncs, counter, "serve.wal.fsyncs_total");
handle!(
    wal_append_failures,
    counter,
    "serve.wal.append_failures_total"
);
handle!(wal_faults, counter, "serve.wal.faults_total");

// Snapshots.
handle!(
    snapshot_write_seconds,
    histogram,
    "serve.snapshot.write_seconds"
);
handle!(snapshot_writes, counter, "serve.snapshot.writes_total");
handle!(snapshot_failures, counter, "serve.snapshot.failures_total");
handle!(snapshot_faults, counter, "serve.snapshot.faults_total");

// Published truth snapshots (the wait-free read path).
handle!(truth_publishes, counter, "serve.truth.publishes_total");
handle!(truth_reads, counter, "serve.truth.reads_total");
handle!(
    truth_retired_freed,
    counter,
    "serve.truth.retired_freed_total"
);
handle!(truth_read_seconds, histogram, "serve.truth.read_seconds");

// Recovery.
handle!(
    recovery_scan_seconds,
    histogram,
    "serve.recovery.scan_seconds"
);
handle!(
    recovery_snapshot_load_seconds,
    histogram,
    "serve.recovery.snapshot_load_seconds"
);
handle!(
    recovery_replay_seconds,
    histogram,
    "serve.recovery.replay_seconds"
);
handle!(
    recovery_requeue_seconds,
    histogram,
    "serve.recovery.requeue_seconds"
);
handle!(
    recovery_sessions_recovered,
    counter,
    "serve.recovery.sessions_recovered_total"
);
handle!(
    recovery_sessions_skipped,
    counter,
    "serve.recovery.sessions_skipped_total"
);
handle!(
    recovery_converges_replayed,
    counter,
    "serve.recovery.converges_replayed_total"
);
handle!(
    recovery_answers_requeued,
    counter,
    "serve.recovery.answers_requeued_total"
);
handle!(
    recovery_wal_frames,
    counter,
    "serve.recovery.wal_frames_total"
);
handle!(
    recovery_wal_bytes,
    counter,
    "serve.recovery.wal_bytes_total"
);
