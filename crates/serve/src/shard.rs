//! Shard internals: the bounded ingest queue, the session table, and the
//! drain-tick executor body that runs on a pool worker.

use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crowd_data::AnswerRecord;
use crowd_stream::{ConvergeBudget, StreamEngine, StreamReport};

use crate::SessionId;

/// One batch of answers waiting in a shard's ingest queue.
pub(crate) struct Envelope {
    pub session: u64,
    pub records: Vec<AnswerRecord>,
}

/// A session slot on a shard. Each slot has its **own** lock (the table
/// maps ids to `Arc<Mutex<SessionSlot>>`), so a long converge on one
/// session never blocks reads or converges of its shard-mates.
pub(crate) struct SessionSlot {
    pub engine: StreamEngine,
    /// The most recent drain-tick output — the freshest model state.
    /// After a budget-exhausted tick this is an *unconverged* snapshot
    /// (`result.converged == false`); readers that require a fixed point
    /// must check that flag.
    pub last_report: Option<StreamReport>,
    /// `Some(message)` once a converge panicked; the slot refuses further
    /// work until evicted.
    pub poisoned: Option<String>,
    /// Test-only fault injection: the next converge on this slot panics.
    pub debug_panic_next_converge: bool,
}

/// The ingest queue, bounded in **answers** (not envelopes) so queue
/// memory is proportional to actual load.
pub(crate) struct IngestQueue {
    pub queue: VecDeque<Envelope>,
    pub queued_answers: usize,
}

/// What one shard did during one drain tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardTickStats {
    pub answers_ingested: usize,
    pub sessions_converged: usize,
    pub sessions_budget_exhausted: usize,
    pub sessions_deadline_deferred: usize,
    pub newly_poisoned: Vec<SessionId>,
    pub ingest_errors: Vec<(SessionId, String)>,
}

pub(crate) struct Shard {
    pub ingest: Mutex<IngestQueue>,
    /// The session table. The map lock is held only for lookups and
    /// insert/remove — never across a converge.
    pub sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionSlot>>>>,
    /// Serialises whole drains against evictions: an eviction must
    /// observe either the pre-drain queue (and pull its envelopes out
    /// itself) or the post-drain engines (envelopes applied) — never a
    /// drain that has stolen the queue but not yet applied it.
    pub drain_gate: Mutex<()>,
}

/// All shard locks tolerate poisoning: the guarded data is kept
/// consistent by the per-session catch_unwind in the drain body, and a
/// panic elsewhere must not wedge every session on the shard.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shard {
    pub fn new() -> Self {
        Self {
            ingest: Mutex::new(IngestQueue {
                queue: VecDeque::new(),
                queued_answers: 0,
            }),
            sessions: Mutex::new(BTreeMap::new()),
            drain_gate: Mutex::new(()),
        }
    }

    /// Fetch one session's slot handle (brief map lock).
    pub fn slot(&self, raw: u64) -> Option<Arc<Mutex<SessionSlot>>> {
        lock(&self.sessions).get(&raw).cloned()
    }

    /// The drain-tick body, run on a pool worker thread (or inline).
    ///
    /// Two phases:
    ///
    /// 1. **Ingest** — move every queued envelope into its engine, in
    ///    FIFO submission order (per-session order is what the
    ///    bit-identical replay property rests on).
    /// 2. **Converge** — for each dirty session (new answers, or a
    ///    previous tick's budget ran out), run one budgeted converge.
    ///    Sessions are visited in ascending id order; once `deadline`
    ///    passes, remaining dirty sessions are deferred to the next tick.
    ///
    /// Each session is locked individually for its own ingest/converge,
    /// so reads of other sessions proceed throughout the tick. A panic
    /// inside one session's converge is caught, poisons only that
    /// session, and the drain moves on to the next one.
    pub fn drain(&self, budget: ConvergeBudget, deadline: Option<Duration>) -> ShardTickStats {
        let _gate = lock(&self.drain_gate);
        let started = Instant::now();
        let mut stats = ShardTickStats::default();

        // Take the whole queue in one lock hold; submitters regain the
        // full capacity immediately.
        let envelopes: Vec<Envelope> = {
            let mut q = lock(&self.ingest);
            q.queued_answers = 0;
            q.queue.drain(..).collect()
        };

        // Phase 1: ingest.
        for env in envelopes {
            let sid = SessionId::from_raw(env.session);
            let Some(slot) = self.slot(env.session) else {
                // The session was evicted between the submit and this
                // drain (the evict path pulls its own envelopes first, so
                // this is a submit that raced the eviction). Report, don't
                // crash the tick.
                stats
                    .ingest_errors
                    .push((sid, "session evicted before ingest".to_string()));
                continue;
            };
            let mut slot = lock(&slot);
            if slot.poisoned.is_some() {
                stats
                    .ingest_errors
                    .push((sid, "session poisoned; batch dropped".to_string()));
                continue;
            }
            match slot.engine.push_batch(&env.records) {
                Ok(n) => stats.answers_ingested += n,
                Err((accepted, e)) => {
                    stats.answers_ingested += accepted;
                    stats
                        .ingest_errors
                        .push((sid, format!("record {accepted} rejected: {e}")));
                }
            }
        }

        // Phase 2: budgeted converges, ascending session id. Snapshot the
        // id → slot handles first; the map lock is not held while any
        // session converges.
        let snapshot: Vec<(u64, Arc<Mutex<SessionSlot>>)> = lock(&self.sessions)
            .iter()
            .map(|(&raw, slot)| (raw, Arc::clone(slot)))
            .collect();
        for (raw, slot) in snapshot {
            let mut slot = lock(&slot);
            if slot.poisoned.is_some() || !slot.engine.needs_converge() {
                continue;
            }
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    stats.sessions_deadline_deferred += 1;
                    continue;
                }
            }
            let inject = std::mem::take(&mut slot.debug_panic_next_converge);
            let engine = &mut slot.engine;
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if inject {
                    panic!("injected converge panic");
                }
                engine.converge_budgeted(budget)
            }));
            match outcome {
                Ok(Ok(report)) => {
                    if report.result.converged {
                        stats.sessions_converged += 1;
                    } else {
                        stats.sessions_budget_exhausted += 1;
                    }
                    slot.last_report = Some(report);
                }
                Ok(Err(e)) => {
                    // A typed engine error (not a panic): the engine is
                    // still consistent, so the session stays usable; the
                    // error is surfaced in the tick report.
                    stats
                        .ingest_errors
                        .push((SessionId::from_raw(raw), format!("converge failed: {e}")));
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    slot.poisoned = Some(msg);
                    stats.newly_poisoned.push(SessionId::from_raw(raw));
                }
            }
        }
        stats
    }
}

/// Best-effort panic payload rendering for poison records.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
