//! Shard internals: the bounded ingest queue, the session table, the
//! per-session WAL handles, and the drain-tick executor body that runs
//! on a pool worker.
//!
//! Lock ordering (deadlock freedom): `slot → wal → ingest`, with the
//! session-table and WAL-table map locks held only for lookups. The
//! submit path takes `wal → ingest` (after a brief, released slot
//! check); the drain takes `ingest` alone to steal the queue, then
//! `slot → wal` per session. No path takes them in a conflicting order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crowd_data::AnswerRecord;
use crowd_stream::{ConvergeBudget, StreamEngine, StreamReport};

use crate::durable::fault::{FaultPlan, FaultSite};
use crate::durable::snapshot::{write_snapshot, SnapshotData};
use crate::durable::wal::WalWriter;
use crate::durable::{self, DurabilityConfig};
use crate::obs;
use crate::service::SessionStats;
use crate::truth::{Published, SnapshotState, TruthSnapshot};
use crate::SessionId;

/// One batch of answers waiting in a shard's ingest queue.
pub(crate) struct Envelope {
    pub session: u64,
    pub records: Vec<AnswerRecord>,
}

/// A session slot on a shard. Each slot has its **own** lock (the table
/// maps ids to `Arc<Mutex<SessionSlot>>`), so a long converge on one
/// session never blocks reads or converges of its shard-mates.
pub(crate) struct SessionSlot {
    pub engine: StreamEngine,
    /// The most recent drain-tick output — the freshest model state.
    /// After a budget-exhausted tick this is an *unconverged* snapshot
    /// (`result.converged == false`); readers that require a fixed point
    /// must check that flag.
    pub last_report: Option<StreamReport>,
    /// `Some(message)` once a converge panicked; the slot refuses further
    /// work until restarted (durable sessions, next tick) or evicted.
    pub poisoned: Option<String>,
    /// Converge attempts so far (the [`FaultSite::Converge`] index —
    /// panicked attempts count, so a restarted session's retry draws a
    /// fresh fault decision).
    pub converge_attempts: u64,
    /// Checkpoint auto-restarts consumed (bounded by
    /// [`DurabilityConfig::max_session_restarts`]).
    pub restarts: u32,
    /// Answer batches the engine has absorbed (the in-memory twin of the
    /// WAL's ingest cursor) — published as
    /// [`TruthSnapshot::cum_batches`].
    pub batches_ingested: u64,
    /// Test-only fault injection: the next converge on this slot panics.
    pub debug_panic_next_converge: bool,
    /// Test-only: the next converge on this slot parks on this gate
    /// (with the slot lock held) until released — how the wait-free
    /// read-path tests pin a converge "in flight".
    #[cfg(any(test, feature = "fault-inject"))]
    pub debug_block_next_converge: Option<Arc<crate::service::ConvergeGate>>,
}

impl SessionSlot {
    pub fn new(engine: StreamEngine) -> Self {
        Self {
            engine,
            last_report: None,
            poisoned: None,
            converge_attempts: 0,
            restarts: 0,
            batches_ingested: 0,
            debug_panic_next_converge: false,
            #[cfg(any(test, feature = "fault-inject"))]
            debug_block_next_converge: None,
        }
    }
}

/// A session's durability state: the WAL writer plus the frame counters
/// that tie the log to the engine. Lives outside [`SessionSlot`] so a
/// submit's WAL append (possibly an fsync) never holds the slot lock
/// and never blocks reads.
pub(crate) struct SessionWal {
    pub writer: WalWriter,
    /// Batch frames appended (submit side).
    pub batches_appended: u64,
    /// Batch frames ingested into the engine (drain side) — the
    /// `cum_batches` recorded by the next converge frame.
    pub batches_ingested: u64,
    /// Converge frames appended.
    pub converges_logged: u64,
    /// Successful converges since the last snapshot.
    pub converges_since_snapshot: u64,
    /// Snapshots written (the [`FaultSite::Snapshot`] index).
    pub snapshots_written: u64,
}

/// The ingest queue, bounded in **answers** (not envelopes) so queue
/// memory is proportional to actual load.
pub(crate) struct IngestQueue {
    pub queue: VecDeque<Envelope>,
    pub queued_answers: usize,
}

/// What one shard did during one drain tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardTickStats {
    pub answers_ingested: usize,
    pub sessions_converged: usize,
    pub sessions_budget_exhausted: usize,
    pub sessions_deadline_deferred: usize,
    pub sessions_restarted: usize,
    pub newly_poisoned: Vec<SessionId>,
    pub ingest_errors: Vec<(SessionId, String)>,
}

/// Per-tick context a drain needs beyond the budget: the durability
/// configuration (for WAL converge frames, snapshot cadence, and
/// checkpoint auto-restarts) and the fault plan.
#[derive(Clone, Default)]
pub(crate) struct DrainCtx {
    pub durability: Option<DurabilityConfig>,
    pub fault: FaultPlan,
}

pub(crate) struct Shard {
    /// This shard's index in the service's shard vector (recorded in
    /// published [`SessionStats`]).
    pub index: usize,
    pub ingest: Mutex<IngestQueue>,
    /// The session table. The map lock is held only for lookups and
    /// insert/remove — never across a converge.
    pub sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionSlot>>>>,
    /// Per-session WAL handles (present only when durability is on).
    /// Same discipline as the session table: map lock for lookups only.
    pub wals: Mutex<BTreeMap<u64, Arc<Mutex<SessionWal>>>>,
    /// Per-session published truth cells — the wait-free read path. The
    /// map lock is for lookups and insert/remove only; reads and
    /// publishes go through the cell, never this lock.
    pub truths: Mutex<BTreeMap<u64, Arc<Published<TruthSnapshot>>>>,
    /// Serialises whole drains against evictions: an eviction must
    /// observe either the pre-drain queue (and pull its envelopes out
    /// itself) or the post-drain engines (envelopes applied) — never a
    /// drain that has stolen the queue but not yet applied it.
    pub drain_gate: Mutex<()>,
    /// Lock-free mirror of `ingest.queued_answers`, kept in step at
    /// every queue mutation so [`CrowdServe::stats`](crate::CrowdServe::stats)
    /// polls without touching the queue lock.
    pub queued_answers: AtomicUsize,
    /// Lock-free count of currently-poisoned sessions on this shard
    /// (same purpose).
    pub poisoned_sessions: AtomicUsize,
}

/// All shard locks tolerate poisoning: the guarded data is kept
/// consistent by the per-session catch_unwind in the drain body, and a
/// panic elsewhere must not wedge every session on the shard.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shard {
    pub fn new(index: usize) -> Self {
        Self {
            index,
            ingest: Mutex::new(IngestQueue {
                queue: VecDeque::new(),
                queued_answers: 0,
            }),
            sessions: Mutex::new(BTreeMap::new()),
            wals: Mutex::new(BTreeMap::new()),
            truths: Mutex::new(BTreeMap::new()),
            drain_gate: Mutex::new(()),
            queued_answers: AtomicUsize::new(0),
            poisoned_sessions: AtomicUsize::new(0),
        }
    }

    /// Fetch one session's slot handle (brief map lock).
    pub fn slot(&self, raw: u64) -> Option<Arc<Mutex<SessionSlot>>> {
        lock(&self.sessions).get(&raw).cloned()
    }

    /// Fetch one session's WAL handle (brief map lock).
    pub fn wal(&self, raw: u64) -> Option<Arc<Mutex<SessionWal>>> {
        lock(&self.wals).get(&raw).cloned()
    }

    /// Fetch one session's published truth cell (brief map lock).
    pub fn truth(&self, raw: u64) -> Option<Arc<Published<TruthSnapshot>>> {
        lock(&self.truths).get(&raw).cloned()
    }

    /// The drain-tick body, run on a pool worker thread (or inline).
    ///
    /// Three phases:
    ///
    /// 0. **Restart** — with durability on, poisoned sessions that still
    ///    have restart budget are rebuilt from their last checkpoint +
    ///    WAL replay and resume serving (graceful degradation instead of
    ///    dying).
    /// 1. **Ingest** — move every queued envelope into its engine, in
    ///    FIFO submission order (per-session order is what the
    ///    bit-identical replay property rests on).
    /// 2. **Converge** — for each dirty session (new answers, or a
    ///    previous tick's budget ran out), run one budgeted converge.
    ///    Sessions are visited in ascending id order; once `deadline`
    ///    passes, remaining dirty sessions are deferred to the next tick.
    ///    With durability on, each successful converge appends a WAL
    ///    converge frame (pinning the replay schedule) and, on cadence,
    ///    an atomic snapshot of the warm state.
    ///
    /// Each session is locked individually for its own ingest/converge,
    /// so reads of other sessions proceed throughout the tick. A panic
    /// inside one session's converge is caught, poisons only that
    /// session, and the drain moves on to the next one.
    pub fn drain(
        &self,
        budget: ConvergeBudget,
        deadline: Option<Duration>,
        ctx: &DrainCtx,
    ) -> ShardTickStats {
        let _gate = lock(&self.drain_gate);
        let started = Instant::now();
        let tick_timer = obs::shard_tick_seconds().start_timer();
        let mut stats = ShardTickStats::default();
        // Sessions whose published snapshot must be refreshed at the end
        // of this tick (ingested, converged, poisoned, or restarted).
        let mut touched: BTreeSet<u64> = BTreeSet::new();

        // Phase 0: checkpoint auto-restarts.
        if ctx.durability.is_some() {
            self.restart_poisoned(ctx, &mut stats, &mut touched);
        }

        // Take the whole queue in one lock hold; submitters regain the
        // full capacity immediately.
        let envelopes: Vec<Envelope> = {
            let mut q = lock(&self.ingest);
            obs::ingest_queued().add(-(q.queued_answers as i64));
            self.queued_answers
                .fetch_sub(q.queued_answers, Ordering::SeqCst);
            q.queued_answers = 0;
            q.queue.drain(..).collect()
        };

        // Phase 1: ingest.
        for env in envelopes {
            let sid = SessionId::from_raw(env.session);
            let Some(slot) = self.slot(env.session) else {
                // The session was evicted between the submit and this
                // drain (the evict path pulls its own envelopes first, so
                // this is a submit that raced the eviction). Report, don't
                // crash the tick.
                stats
                    .ingest_errors
                    .push((sid, "session evicted before ingest".to_string()));
                continue;
            };
            let mut slot = lock(&slot);
            if slot.poisoned.is_some() {
                // Keep the batch (it raced the poisoning panic into the
                // queue, and with durability it is already acknowledged in
                // the WAL): a restartable session ingests it after its
                // next-tick checkpoint restart, and an evicted one
                // surfaces it in `EvictedSession::undrained`. Requeueing
                // at the back is order-safe — submits to a poisoned
                // session are refused, so no younger envelope of this
                // session can already be ahead of it.
                drop(slot);
                let mut q = lock(&self.ingest);
                q.queued_answers += env.records.len();
                self.queued_answers
                    .fetch_add(env.records.len(), Ordering::SeqCst);
                obs::ingest_queued().add(env.records.len() as i64);
                q.queue.push_back(env);
                continue;
            }
            match slot.engine.push_batch(&env.records) {
                Ok(n) => stats.answers_ingested += n,
                Err((accepted, e)) => {
                    stats.answers_ingested += accepted;
                    stats
                        .ingest_errors
                        .push((sid, format!("record {accepted} rejected: {e}")));
                }
            }
            slot.batches_ingested += 1;
            touched.insert(env.session);
            // The batch left the queue and entered the engine (even a
            // partially-rejected one: the rejection is deterministic and
            // replays identically) — advance the WAL's ingest cursor so
            // the next converge frame covers it.
            if ctx.durability.is_some() {
                if let Some(wal) = self.wal(env.session) {
                    lock(&wal).batches_ingested += 1;
                }
            }
        }

        // Phase 2: budgeted converges, ascending session id. Snapshot the
        // id → slot handles first; the map lock is not held while any
        // session converges.
        let snapshot: Vec<(u64, Arc<Mutex<SessionSlot>>)> = lock(&self.sessions)
            .iter()
            .map(|(&raw, slot)| (raw, Arc::clone(slot)))
            .collect();
        for (raw, slot) in snapshot {
            let mut slot = lock(&slot);
            if slot.poisoned.is_some() || !slot.engine.needs_converge() {
                continue;
            }
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    stats.sessions_deadline_deferred += 1;
                    obs::shard_deadline_deferred().inc();
                    continue;
                }
            }
            let inject_debug = std::mem::take(&mut slot.debug_panic_next_converge);
            #[cfg(any(test, feature = "fault-inject"))]
            let inject_block = std::mem::take(&mut slot.debug_block_next_converge);
            let attempt = slot.converge_attempts;
            slot.converge_attempts += 1;
            let inject_fault = ctx
                .fault
                .decide(FaultSite::Converge {
                    session: raw,
                    index: attempt,
                })
                .is_some();
            let engine = &mut slot.engine;
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if inject_debug {
                    panic!("injected converge panic");
                }
                if inject_fault {
                    panic!("injected converge panic (fault plan)");
                }
                #[cfg(any(test, feature = "fault-inject"))]
                if let Some(gate) = inject_block {
                    gate.park(); // holds the slot lock until released
                }
                engine.converge_budgeted(budget)
            }));
            match outcome {
                Ok(Ok(report)) => {
                    if report.result.converged {
                        stats.sessions_converged += 1;
                        obs::shard_sessions_converged().inc();
                    } else {
                        stats.sessions_budget_exhausted += 1;
                        obs::shard_budget_exhausted().inc();
                    }
                    slot.last_report = Some(report);
                    touched.insert(raw);
                    if let Some(dur) = &ctx.durability {
                        self.log_converge(raw, &slot, budget, dur, ctx, &mut stats);
                    }
                }
                Ok(Err(e)) => {
                    // A typed engine error (not a panic): the engine is
                    // still consistent, so the session stays usable; the
                    // error is surfaced in the tick report.
                    stats
                        .ingest_errors
                        .push((SessionId::from_raw(raw), format!("converge failed: {e}")));
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    slot.poisoned = Some(msg);
                    stats.newly_poisoned.push(SessionId::from_raw(raw));
                    touched.insert(raw);
                    self.poisoned_sessions.fetch_add(1, Ordering::SeqCst);
                    obs::shard_poisoned().inc();
                }
            }
        }

        // Publish a fresh truth snapshot for every session this tick
        // changed — the single write that the wait-free read path sees.
        // Each slot is re-locked briefly; the drain gate keeps the state
        // it captured from moving under us.
        for &raw in &touched {
            let Some(cell) = self.truth(raw) else {
                continue;
            };
            let Some(slot) = self.slot(raw) else { continue };
            let slot = lock(&slot);
            publish_session(&cell, &slot, SessionId::from_raw(raw), self.index, None);
        }
        obs::shard_answers_ingested().add(stats.answers_ingested as u64);
        let dt = tick_timer.stop();
        crowd_obs::journal::record(
            crowd_obs::SpanKind::DrainTick,
            stats.answers_ingested as u64,
            dt,
        );
        stats
    }

    /// Append a converge frame for a just-completed converge and, on
    /// cadence, write a snapshot of the warm state. Called with the slot
    /// lock held (slot → wal is the sanctioned order).
    ///
    /// A converge-frame append failure **wedges** the WAL: the engine
    /// has converged but the log no longer records it, so any later
    /// replay would diverge from the live trajectory. Wedging makes the
    /// degradation explicit — reads keep serving, but further submits
    /// fail typed until the session is restarted or evicted. A snapshot
    /// failure, by contrast, is only logged: snapshots are an
    /// optimisation and recovery falls back to full-WAL replay.
    fn log_converge(
        &self,
        raw: u64,
        slot: &SessionSlot,
        budget: ConvergeBudget,
        dur: &DurabilityConfig,
        ctx: &DrainCtx,
        stats: &mut ShardTickStats,
    ) {
        let Some(wal) = self.wal(raw) else { return };
        let mut wal = lock(&wal);
        if wal.writer.broken().is_some() {
            return;
        }
        let cum = wal.batches_ingested;
        let logged_budget = u64::try_from(budget.max_iterations).unwrap_or(u64::MAX);
        if let Err(e) = wal.writer.append_converge(cum, logged_budget) {
            wal.writer
                .wedge(format!("converge frame append failed: {e}"));
            stats.ingest_errors.push((
                SessionId::from_raw(raw),
                format!("wal wedged (converge frame append failed: {e}); submits will fail until restart/evict"),
            ));
            return;
        }
        wal.converges_logged += 1;
        wal.converges_since_snapshot += 1;
        if dur.snapshot_every_converges > 0
            && wal.converges_since_snapshot >= dur.snapshot_every_converges
        {
            wal.converges_since_snapshot = 0;
            let index = wal.snapshots_written;
            wal.snapshots_written += 1;
            let data = SnapshotData {
                cum_batches: cum,
                cum_converges: wal.converges_logged,
                checkpoint: slot.engine.checkpoint(),
            };
            let path = durable::snapshot_path(&dur.dir, raw);
            let sync = dur.fsync != durable::FsyncPolicy::Never;
            let timer = obs::snapshot_write_seconds().start_timer();
            let result = write_snapshot(&path, raw, index, &ctx.fault, &data, sync);
            let dt = timer.stop();
            crowd_obs::journal::record(crowd_obs::SpanKind::SnapshotWrite, raw, dt);
            if let Err(e) = result {
                obs::snapshot_failures().inc();
                stats.ingest_errors.push((
                    SessionId::from_raw(raw),
                    format!("snapshot write failed (recovery will replay the full wal): {e}"),
                ));
            } else {
                obs::snapshot_writes().inc();
            }
        }
    }

    /// Phase 0: rebuild poisoned sessions from snapshot + WAL replay.
    ///
    /// The recovered engine is advanced to exactly the batches the live
    /// engine had ingested (`batches_ingested`): tail frames beyond the
    /// last converge marker are pushed only up to that cursor — the rest
    /// are still sitting in the in-memory ingest queue and will be
    /// ingested by phase 1 as usual (pushing them here would make phase 1
    /// re-push duplicates, whose rejection would silently drop the whole
    /// remainder of each batch).
    fn restart_poisoned(
        &self,
        ctx: &DrainCtx,
        stats: &mut ShardTickStats,
        touched: &mut BTreeSet<u64>,
    ) {
        let Some(dur) = &ctx.durability else { return };
        let snapshot: Vec<(u64, Arc<Mutex<SessionSlot>>)> = lock(&self.sessions)
            .iter()
            .map(|(&raw, slot)| (raw, Arc::clone(slot)))
            .collect();
        for (raw, slot_arc) in snapshot {
            let mut slot = lock(&slot_arc);
            if slot.poisoned.is_none() || slot.restarts >= dur.max_session_restarts {
                continue;
            }
            let sid = SessionId::from_raw(raw);
            let Some(wal_arc) = self.wal(raw) else {
                continue;
            };
            let mut wal = lock(&wal_arc);
            match durable::recover_session(&dur.dir, raw) {
                Ok(mut r) => {
                    // Advance to the live ingest cursor (see above).
                    let ingested_past_converge =
                        usize::try_from(wal.batches_ingested.saturating_sub(r.cum_batches))
                            .unwrap_or(usize::MAX)
                            .min(r.tail_batches.len());
                    for batch in &r.tail_batches[..ingested_past_converge] {
                        let _ = r.engine.push_batch(batch);
                    }
                    // Heal a wedged writer by reopening on the valid
                    // prefix (truncating any torn tail).
                    if wal.writer.broken().is_some() || r.torn {
                        let path = durable::wal_path(&dur.dir, raw);
                        match WalWriter::reopen(
                            &path,
                            raw,
                            dur.fsync,
                            ctx.fault.clone(),
                            r.valid_len,
                            r.valid_frames,
                        ) {
                            Ok(writer) => {
                                wal.writer = writer;
                                wal.batches_appended = r.cum_batches + r.tail_batches.len() as u64;
                                wal.batches_ingested =
                                    r.cum_batches + ingested_past_converge as u64;
                                wal.converges_logged = r.cum_converges;
                            }
                            Err(e) => {
                                stats.ingest_errors.push((
                                    sid,
                                    format!("restart aborted: wal reopen failed: {e}"),
                                ));
                                continue;
                            }
                        }
                    }
                    slot.engine = r.engine;
                    slot.last_report = r.last_report;
                    slot.poisoned = None;
                    slot.restarts += 1;
                    slot.batches_ingested = wal.batches_ingested;
                    self.poisoned_sessions.fetch_sub(1, Ordering::SeqCst);
                    touched.insert(raw);
                    stats.sessions_restarted += 1;
                    obs::shard_restarts().inc();
                    crowd_obs::journal::record(
                        crowd_obs::SpanKind::SessionRestart,
                        raw,
                        (r.timings.scan + r.timings.snapshot_load + r.timings.replay).as_secs_f64(),
                    );
                    obs::recovery_snapshot_load_seconds()
                        .record(r.timings.snapshot_load.as_secs_f64());
                    obs::recovery_replay_seconds().record(r.timings.replay.as_secs_f64());
                }
                Err(e) => {
                    stats
                        .ingest_errors
                        .push((sid, format!("restart failed: {e}")));
                }
            }
        }
    }
}

/// Publish a fresh [`TruthSnapshot`] for one session from its locked
/// slot. Every field is read under this single slot hold, which is what
/// makes the snapshot internally consistent ("same tick" semantics).
///
/// For a poisoned slot the engine is not trusted (the panic may have
/// left mid-converge state behind): `plurality` is carried forward from
/// the previous snapshot and the state degrades to
/// [`SnapshotState::SnapshotStale`]. `last_report` is always safe — the
/// panic never touches it. `state_override` lets the evict path publish
/// the terminal [`SnapshotState::SessionGone`] snapshot.
pub(crate) fn publish_session(
    cell: &Published<TruthSnapshot>,
    slot: &SessionSlot,
    session: SessionId,
    shard_idx: usize,
    state_override: Option<SnapshotState>,
) {
    cell.publish_with(|prior, epoch| {
        let state = state_override
            .clone()
            .unwrap_or_else(|| match &slot.poisoned {
                Some(reason) => SnapshotState::SnapshotStale {
                    reason: reason.clone(),
                },
                None => SnapshotState::Live,
            });
        let summary = slot.engine.summary();
        TruthSnapshot {
            session,
            epoch,
            state,
            cum_batches: slot.batches_ingested,
            // A panicked converge may have left the engine's views
            // mid-update: only scalar counters are read from it; the
            // estimates are carried forward from the last good snapshot.
            plurality: if slot.poisoned.is_none() {
                slot.engine.current_estimates()
            } else {
                prior.plurality.clone()
            },
            report: slot.last_report.clone(),
            stats: SessionStats {
                session,
                shard: shard_idx,
                answers_seen: summary.answers_seen,
                pending_answers: summary.pending_answers,
                converges: summary.converges,
                needs_converge: summary.needs_converge,
                poisoned: slot.poisoned.is_some(),
                restarts: slot.restarts,
            },
        }
    });
    obs::truth_publishes().inc();
}

/// Build a snapshot of a *healthy* slot's state (the engine is trusted;
/// callers publishing for a poisoned slot overwrite `plurality` and
/// `state`, see [`publish_session`]).
pub(crate) fn snapshot_from_slot(
    slot: &SessionSlot,
    session: SessionId,
    shard_idx: usize,
    epoch: u64,
) -> TruthSnapshot {
    let summary = slot.engine.summary();
    TruthSnapshot {
        session,
        epoch,
        state: SnapshotState::Live,
        cum_batches: slot.batches_ingested,
        plurality: slot.engine.current_estimates(),
        report: slot.last_report.clone(),
        stats: SessionStats {
            session,
            shard: shard_idx,
            answers_seen: summary.answers_seen,
            pending_answers: summary.pending_answers,
            converges: summary.converges,
            needs_converge: summary.needs_converge,
            poisoned: slot.poisoned.is_some(),
            restarts: slot.restarts,
        },
    }
}

/// Best-effort panic payload rendering for poison records.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::Method;
    use crowd_data::{Answer, TaskType};
    use crowd_stream::StreamConfig;

    #[test]
    fn poisoned_session_batches_are_requeued_not_dropped() {
        // A batch that raced the poisoning panic into the queue must
        // survive drains (it is acknowledged; eviction or a restart will
        // account for it) rather than being silently discarded.
        let shard = Shard::new(0);
        let config = StreamConfig::new(Method::Mv, TaskType::DecisionMaking, 2, 2);
        let mut slot = SessionSlot::new(StreamEngine::new(config).unwrap());
        slot.poisoned = Some("injected".to_string());
        lock(&shard.sessions).insert(7, Arc::new(Mutex::new(slot)));
        let records = vec![AnswerRecord {
            task: 0,
            worker: 0,
            answer: Answer::Label(1),
        }];
        {
            let mut q = lock(&shard.ingest);
            q.queued_answers = records.len();
            shard.queued_answers.store(records.len(), Ordering::SeqCst);
            q.queue.push_back(Envelope {
                session: 7,
                records: records.clone(),
            });
        }
        for _ in 0..3 {
            let stats = shard.drain(
                ConvergeBudget::iterations(usize::MAX),
                None,
                &DrainCtx::default(),
            );
            assert_eq!(stats.answers_ingested, 0);
            assert!(stats.ingest_errors.is_empty());
        }
        let q = lock(&shard.ingest);
        assert_eq!(q.queued_answers, 1);
        assert_eq!(q.queue.len(), 1);
        assert_eq!(q.queue[0].records, records);
    }
}
