//! The bounded, typed event journal.
//!
//! Metrics answer *how much / how long*; the journal answers *what just
//! happened, in what order* — the last few thousand typed spans (drain
//! ticks, converges, WAL appends and fsyncs, snapshots, recovery
//! phases, restarts, backpressure rejects) kept in per-thread ring
//! buffers and stitched together by a global drain.
//!
//! Semantics, deliberately modest:
//!
//! - **Bounded and lossy**: each writer thread keeps at most
//!   [`PER_THREAD_CAP`] events; when full, the oldest event on that
//!   thread is dropped and the global [`dropped`] counter incremented —
//!   recording never blocks on a reader and never allocates beyond the
//!   ring.
//! - **Per-thread writers**: a thread's first event registers its
//!   buffer in the global writer list; recording after that locks only
//!   the thread's own buffer (uncontended except against a drain).
//! - **Global drain**: [`drain`] removes and returns every buffered
//!   event, merged across threads and sorted by the global sequence
//!   number — a total order of allocation (not of completion: an event
//!   is buffered after its span finishes).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum buffered events per writer thread.
pub const PER_THREAD_CAP: usize = 4096;

/// The typed span kinds the layers record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One shard drain tick (`key` = shard index).
    DrainTick,
    /// One engine converge (`key` = session id, 0 outside serve).
    Converge,
    /// One answer-batch push into a stream engine (`key` = session id).
    BatchPush,
    /// One WAL frame append (`key` = session id).
    WalAppend,
    /// One WAL fsync (`key` = session id).
    WalFsync,
    /// One durable snapshot write (`key` = session id).
    SnapshotWrite,
    /// One recovery phase (`key` = phase ordinal: 0 scan, 1 snapshot
    /// load, 2 replay, 3 requeue).
    RecoveryPhase,
    /// One poisoned-session restart (`key` = session id).
    SessionRestart,
    /// One backpressure rejection (`key` = session id).
    BackpressureReject,
    /// One injected durability fault firing (`key` = session id).
    FaultInjected,
    /// One sweep cell finishing (`key` = cell index).
    SweepCell,
}

impl SpanKind {
    /// Stable lower-snake name used in JSON dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DrainTick => "drain_tick",
            Self::Converge => "converge",
            Self::BatchPush => "batch_push",
            Self::WalAppend => "wal_append",
            Self::WalFsync => "wal_fsync",
            Self::SnapshotWrite => "snapshot_write",
            Self::RecoveryPhase => "recovery_phase",
            Self::SessionRestart => "session_restart",
            Self::BackpressureReject => "backpressure_reject",
            Self::FaultInjected => "fault_injected",
            Self::SweepCell => "sweep_cell",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global allocation order (total across threads).
    pub seq: u64,
    /// Microseconds since process start when the event was recorded.
    pub at_micros: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Kind-specific key (session id, shard index, phase ordinal…).
    pub key: u64,
    /// Span duration in seconds (0.0 for instantaneous events such as
    /// rejects and restarts).
    pub seconds: f64,
}

type Buffer = Arc<Mutex<VecDeque<Event>>>;

/// Every thread's buffer, in registration order. Buffers outlive their
/// threads so nothing recorded is lost to thread teardown.
fn writers() -> &'static Mutex<Vec<Buffer>> {
    static WRITERS: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    WRITERS.get_or_init(|| Mutex::new(Vec::new()))
}

fn seq_counter() -> &'static AtomicU64 {
    static SEQ: OnceLock<AtomicU64> = OnceLock::new();
    SEQ.get_or_init(|| AtomicU64::new(0))
}

fn dropped_counter() -> &'static AtomicU64 {
    static DROPPED: OnceLock<AtomicU64> = OnceLock::new();
    DROPPED.get_or_init(|| AtomicU64::new(0))
}

thread_local! {
    static LOCAL: RefCell<Option<Buffer>> = const { RefCell::new(None) };
}

/// Record one event. No-op while recording is disabled. Never blocks on
/// a drain for more than the time to push into one `VecDeque`.
pub fn record(kind: SpanKind, key: u64, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    let event = Event {
        seq: seq_counter().fetch_add(1, Ordering::Relaxed),
        at_micros: crate::now_micros(),
        kind,
        key,
        seconds,
    };
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| {
            let buffer: Buffer = Arc::new(Mutex::new(VecDeque::with_capacity(64)));
            writers()
                .lock()
                .expect("journal writer list poisoned")
                .push(Arc::clone(&buffer));
            buffer
        });
        let mut q = buffer.lock().expect("journal buffer poisoned");
        if q.len() >= PER_THREAD_CAP {
            q.pop_front();
            dropped_counter().fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    });
}

/// Remove and return every buffered event across all threads, sorted by
/// sequence number. Concurrent recorders keep running; their new events
/// land in the next drain.
pub fn drain() -> Vec<Event> {
    let buffers: Vec<Buffer> = writers()
        .lock()
        .expect("journal writer list poisoned")
        .clone();
    let mut out = Vec::new();
    for b in buffers {
        out.extend(b.lock().expect("journal buffer poisoned").drain(..));
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Events dropped so far across all threads (ring-buffer overwrites).
pub fn dropped() -> u64 {
    dropped_counter().load(Ordering::Relaxed)
}

/// Render a drained event list as a JSON object:
/// `{"dropped": n, "events": [{"seq":…, "at_micros":…, "kind":"…",
/// "key":…, "seconds":…}, …]}`.
pub fn to_json(events: &[Event], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{{\"dropped\": {dropped}, \"events\": [");
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let secs = if e.seconds.is_finite() {
            e.seconds
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{sep}{{\"seq\": {}, \"at_micros\": {}, \"kind\": \"{}\", \
             \"key\": {}, \"seconds\": {:.9}}}",
            e.seq,
            e.at_micros,
            e.kind.name(),
            e.key,
            secs
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_sequence_order() {
        record(SpanKind::DrainTick, 7001, 1e-3);
        record(SpanKind::Converge, 7001, 2e-3);
        let events = drain();
        let mine: Vec<&Event> = events.iter().filter(|e| e.key == 7001).collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].seq < mine[1].seq);
        assert_eq!(mine[0].kind, SpanKind::DrainTick);
        // Drained means gone.
        assert!(drain().iter().all(|e| e.key != 7001));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        // Overfill from this thread only; other tests' events on other
        // threads are unaffected.
        let before = dropped();
        for i in 0..(PER_THREAD_CAP as u64 + 10) {
            record(SpanKind::WalAppend, 8000 + i, 0.0);
        }
        assert!(dropped() >= before + 10);
        let events = drain();
        let mine: Vec<&Event> = events.iter().filter(|e| e.key >= 8000).collect();
        assert!(mine.len() <= PER_THREAD_CAP);
        // The survivors are the newest.
        assert!(mine.iter().all(|e| e.key >= 8010));
    }

    #[test]
    fn json_shape_is_parseable_by_eye() {
        let events = [Event {
            seq: 1,
            at_micros: 5,
            kind: SpanKind::BackpressureReject,
            key: 3,
            seconds: 0.0,
        }];
        let j = to_json(&events, 2);
        assert!(j.starts_with("{\"dropped\": 2"));
        assert!(j.contains("\"kind\": \"backpressure_reject\""));
        assert!(j.ends_with("]}"));
    }
}
