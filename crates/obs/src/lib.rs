//! # crowd-obs — the std-only observability spine
//!
//! The stack runs EM under budgets, drains bounded queues, fsyncs WALs,
//! and auto-restarts poisoned sessions; this crate is the runtime signal
//! for all of it — a process-global [`MetricsRegistry`] of named
//! [`Counter`]s, [`Gauge`]s (with built-in high-water marks), and
//! lock-free log-linear latency [`Histogram`]s, scoped [`Timer`] guards
//! that feed them, and a bounded, typed, lossy-with-drop-counter
//! [`journal`] of recent events (drain ticks, converges, WAL appends,
//! fsyncs, snapshots, recovery phases, restarts, backpressure rejects).
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies** beyond `std` and the bucketing math shared
//!    with [`crowd_stats::buckets`] — the build environment is offline.
//! 2. **Cheap enough to leave on**: every record path is a handful of
//!    relaxed atomic ops; the serve bench gates the mem-mode throughput
//!    delta with metrics on vs off at ≤ 3% (`obs_overhead_within_bound`
//!    in `BENCH_serve.json`).
//! 3. **Observation only**: nothing in this crate feeds back into
//!    inference — enabling or disabling metrics cannot perturb any
//!    output bit (pinned by the determinism guard in
//!    `crowd-stream`'s tests).
//!
//! ## Switching it off
//!
//! Recording is gated on one process-global flag, initialised from the
//! `CROWD_OBS` environment variable (`0`/`false`/`off` disable; unset,
//! empty, `1`/`true`/`on` enable; anything else warns once on stderr
//! and enables) and togglable at runtime with [`set_enabled`] — the
//! A/B switch the overhead bench uses. Disabled recording is a single
//! relaxed load; registration, snapshots, and reads keep working.
//!
//! ## Naming scheme
//!
//! Metric names are `layer.component.metric` (e.g.
//! `serve.wal.append_seconds`, `core.pool.queue_depth`); histograms of
//! durations end in `_seconds`, counters in `_total`. See
//! ARCHITECTURE.md §observability for the full catalogue.
//!
//! ```
//! let reqs = crowd_obs::counter("doc.example.requests_total");
//! reqs.inc();
//! let lat = crowd_obs::histogram("doc.example.latency_seconds");
//! {
//!     let _t = lat.start_timer(); // records on drop
//! }
//! lat.record(3.2e-4);
//! let snap = crowd_obs::snapshot();
//! assert!(snap.counter("doc.example.requests_total") >= 1);
//! println!("{}", snap.to_json());
//! ```

#![warn(missing_docs)]

mod hist;
pub mod journal;
mod registry;
mod render;

pub use hist::{Histogram, HistogramSnapshot, Timer};
pub use journal::{Event, SpanKind};
pub use registry::{
    counter, gauge, histogram, snapshot, Counter, Gauge, GaugeSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use render::{render_json, render_prometheus};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-global record switch (see module docs). `OnceLock` holds
/// the env-derived initial value so tests and the overhead bench can
/// flip the live flag without racing env parsing.
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| AtomicBool::new(enabled_from_env()))
}

/// `CROWD_OBS` parsing: empty/unset means on, recognised negatives turn
/// recording off, and anything unrecognised warns **once** on stderr and
/// stays on (same loud-malformed-env contract as `CROWD_THREADS`).
fn enabled_from_env() -> bool {
    let Ok(raw) = std::env::var("CROWD_OBS") else {
        return true;
    };
    let v = raw.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "1" | "true" | "on" | "yes" => true,
        "0" | "false" | "off" | "no" => false,
        _ => {
            static WARNED: OnceLock<()> = OnceLock::new();
            WARNED.get_or_init(|| {
                eprintln!(
                    "warning: unrecognised CROWD_OBS value {raw:?} \
                     (expected 0/1/true/false/on/off); metrics stay enabled"
                );
            });
            true
        }
    }
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turn recording on or off at runtime (process-global). Registration
/// and snapshots are unaffected; only new recordings are dropped while
/// off. This is the switch the serve bench uses to measure the
/// metrics-on vs metrics-off overhead in one process.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// The process-start instant every journal timestamp is measured from.
pub(crate) fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds since [`process_start`].
pub(crate) fn now_micros() -> u64 {
    process_start().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_by_default() {
        // The suite runs without CROWD_OBS set, so recording starts
        // enabled. Toggling is covered by `tests/disabled.rs` in its own
        // process — flipping the process-global flag here would race the
        // sibling unit tests that record concurrently.
        assert!(enabled());
    }

    #[test]
    fn timestamps_are_monotone() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }
}
