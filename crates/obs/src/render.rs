//! Snapshot rendering: hand-rolled JSON (the `crowd_bench::json` style —
//! no serde in the offline build) and Prometheus text exposition for the
//! future network front.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// JSON-escape a metric name (names are ASCII `layer.component.metric`,
/// but the renderer must not emit broken JSON on any input).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON number token — never `NaN`/`inf` (both are invalid
/// JSON); non-finite values render as 0.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "0".to_string()
    }
}

/// Render a snapshot as a JSON object:
///
/// ```json
/// {
///   "schema": "crowd-obs/v1",
///   "counters": {"serve.wal.appends_total": 12},
///   "gauges": {"serve.ingest.queue_depth": {"value": 0, "high_water": 384}},
///   "histograms": {
///     "serve.wal.append_seconds": {
///       "count": 12, "sum": 0.001, "max": 0.0002, "mean": 0.00008,
///       "p50": 0.0001, "p95": 0.0002, "p99": 0.0002,
///       "buckets": [[1e-05, 2e-05, 7], [2e-05, 3e-05, 5]]
///     }
///   }
/// }
/// ```
///
/// Histogram `buckets` list only the non-empty buckets as
/// `[lo, hi, count]` triples (the overflow bucket's `hi` is rendered as
/// its finite lower edge — JSON has no `inf`).
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"crowd-obs/v1\",\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {v}", esc(name));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, g) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"value\": {}, \"high_water\": {}}}",
            esc(&g.name),
            g.value,
            g.high_water
        );
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, h) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
             \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
            esc(&h.name),
            h.count,
            num(h.sum),
            num(h.max),
            num(h.mean()),
            num(h.quantile(0.50)),
            num(h.quantile(0.95)),
            num(h.quantile(0.99)),
        );
        let mut first = true;
        for (b, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = h.layout.bounds(b);
            let hi = if hi.is_finite() { hi } else { lo };
            let _ = write!(
                out,
                "{}[{}, {}, {c}]",
                if first { "" } else { ", " },
                num(lo),
                num(hi)
            );
            first = false;
        }
        out.push_str("]}");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}");
    out
}

/// A metric name in Prometheus form: dots become underscores (the only
/// transformation our `layer.component.metric` names need).
fn prom_name(name: &str) -> String {
    name.replace('.', "_")
}

/// Render a snapshot in the Prometheus text exposition format: counters
/// as `counter`, gauges as two `gauge` series (`<name>` and
/// `<name>_high_water`), histograms as cumulative `<name>_bucket{le=…}`
/// series plus `_sum` and `_count` — the shape a future network front
/// can serve from `/metrics` unchanged.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for g in &snap.gauges {
        let n = prom_name(&g.name);
        let _ = writeln!(
            out,
            "# TYPE {n} gauge\n{n} {}\n# TYPE {n}_high_water gauge\n{n}_high_water {}",
            g.value, g.high_water
        );
    }
    for h in &snap.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (b, &c) in h.buckets.iter().enumerate() {
            cum += c;
            if c == 0 && b + 1 != h.buckets.len() {
                continue; // keep the exposition small; cum still carries
            }
            let (_, hi) = h.layout.bounds(b);
            let le = if hi.is_finite() {
                format!("{hi:.9}")
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", num(h.sum), h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    #[test]
    fn json_dump_has_all_sections_and_no_nan() {
        let r = MetricsRegistry::new();
        r.counter("a.b.c_total").add(3);
        r.gauge("a.b.depth").set(7);
        r.histogram("a.b.lat_seconds").record(2e-4);
        r.histogram("a.b.empty_seconds"); // registered, never recorded
        let j = r.snapshot().to_json();
        assert!(j.contains("\"schema\": \"crowd-obs/v1\""));
        assert!(j.contains("\"a.b.c_total\": 3"));
        assert!(j.contains("\"value\": 7, \"high_water\": 7"));
        assert!(j.contains("\"a.b.lat_seconds\""));
        assert!(j.contains("\"count\": 1"));
        assert!(!j.contains("NaN") && !j.contains("inf"), "{j}");
        // Balanced braces (cheap well-formedness check; the bench crate
        // re-parses the full dump with its real JSON reader).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn prometheus_dump_is_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("x.y.lat_seconds");
        h.record(1.5e-6);
        h.record(2.5e-6);
        h.record(5.0); // far bucket
        let p = r.snapshot().to_prometheus();
        assert!(p.contains("# TYPE x_y_lat_seconds histogram"));
        assert!(p.contains("le=\"+Inf\"} 3"));
        assert!(p.contains("x_y_lat_seconds_count 3"));
        // Cumulative counts never decrease.
        let counts: Vec<u64> = p
            .lines()
            .filter(|l| l.contains("_bucket{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }
}
