//! Lock-free latency histograms and the scoped timers that feed them.
//!
//! The bucketing arithmetic is [`crowd_stats::buckets::LogLinearBuckets`]
//! — the same shared layout math as `crowd_stats::Histogram`, here with
//! an atomic bucket array so any number of threads can record without a
//! lock. A recording is: one binary search over ~80 precomputed edges,
//! one relaxed `fetch_add` on the bucket, a CAS loop folding the value
//! into the running sum, and a monotone `fetch_max` on the max — no
//! allocation, no lock, no syscall.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crowd_stats::buckets::LogLinearBuckets;

/// The shared interior of a registered histogram.
#[derive(Debug)]
pub(crate) struct HistInner {
    layout: LogLinearBuckets,
    buckets: Box<[AtomicU64]>,
    /// Running sum of recorded values, stored as `f64` bits and folded
    /// in with a CAS loop (relaxed — the sum is a statistic, not a
    /// synchronisation point).
    sum_bits: AtomicU64,
    /// Largest recorded value, as `f64` bits. `f64::to_bits` is
    /// order-preserving for non-negative floats, so a plain integer
    /// `fetch_max` implements a float max.
    max_bits: AtomicU64,
}

impl HistInner {
    pub(crate) fn new(layout: LogLinearBuckets) -> Self {
        let buckets = (0..layout.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            layout,
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn record(&self, value: f64) {
        self.buckets[self.layout.index(value)].fetch_add(1, Ordering::Relaxed);
        if value.is_finite() && value > 0.0 {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            self.max_bits.fetch_max(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        // Buckets are read individually (each read atomic); the derived
        // count is their sum, so concurrent snapshots are monotone and
        // never under-report a bucket they over-count elsewhere.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: buckets.iter().sum(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            layout: self.layout.clone(),
            buckets,
        }
    }
}

/// A handle to a registered latency histogram. Cloning shares the
/// underlying buckets; handles are cheap to cache in a `OnceLock` at the
/// call site (the idiomatic pattern for hot paths).
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistInner>);

impl Histogram {
    /// Record one observation (typically seconds). No-op while recording
    /// is disabled. Non-positive and non-finite values land in the
    /// underflow bucket and leave sum/max untouched.
    #[inline]
    pub fn record(&self, value: f64) {
        if crate::enabled() {
            self.0.record(value);
        }
    }

    /// Start a scoped timer that records its elapsed seconds into this
    /// histogram when dropped (or explicitly [`Timer::stop`]ped). While
    /// recording is disabled the timer is a no-op that never reads the
    /// clock.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Observations recorded so far (sum over buckets).
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }
}

/// A scoped timing guard from [`Histogram::start_timer`]: records the
/// elapsed wall time on drop, so early returns and unwinds are measured
/// exactly like the straight-line path.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Stop now, record, and return the elapsed seconds (0.0 when the
    /// timer was started while recording was disabled).
    pub fn stop(mut self) -> f64 {
        match self.start.take() {
            Some(t0) => {
                let dt = t0.elapsed().as_secs_f64();
                self.hist.record(dt);
                dt
            }
            None => 0.0,
        }
    }

    /// Abandon the timer without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            self.hist.record(t0.elapsed().as_secs_f64());
        }
    }
}

/// A point-in-time, mergeable copy of one histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// The registered metric name.
    pub name: String,
    /// Total observations (derived as the sum over buckets).
    pub count: u64,
    /// Sum of all positive finite observations.
    pub sum: f64,
    /// Largest positive observation (0.0 when none recorded).
    pub max: f64,
    /// The bucket layout (shared bucketing math from `crowd-stats`).
    pub layout: LogLinearBuckets,
    /// Per-bucket counts, underflow first, overflow last.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded positive observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile readout (`0.0 ..= 1.0`): the upper edge of
    /// the bucket holding the rank-`q` observation — an upper bound
    /// within one bucket's relative resolution. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return self.layout.quantile_edge(i);
            }
        }
        self.layout.quantile_edge(self.buckets.len() - 1)
    }

    /// Fold another snapshot of the **same layout** into this one
    /// (bucket-wise add, sums added, max of maxes).
    ///
    /// # Panics
    /// Panics if the layouts differ — merging incompatible buckets would
    /// silently misreport latencies.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.layout, other.layout,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(_name: &str) -> Histogram {
        Histogram(Arc::new(
            HistInner::new(LogLinearBuckets::latency_seconds()),
        ))
    }

    #[test]
    fn records_land_in_the_right_buckets() {
        let h = fresh("t");
        h.record(3e-6);
        h.record(3e-6);
        h.record(0.5);
        h.record(-1.0); // underflow, not in sum/max
        h.record(f64::NAN); // underflow
        let s = h.0.snapshot("t");
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 2, "negative + NaN underflow");
        assert_eq!(s.buckets[s.layout.index(3e-6)], 2);
        assert!((s.sum - 0.500006).abs() < 1e-9);
        assert_eq!(s.max, 0.5);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = fresh("q");
        for _ in 0..95 {
            h.record(1e-3);
        }
        for _ in 0..5 {
            h.record(0.9);
        }
        let s = h.0.snapshot("q");
        let p50 = s.quantile(0.5);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!((1e-3..=2e-3).contains(&p50), "p50 {p50}");
        assert!(p95 <= 2e-3, "p95 {p95} (rank 94 is still small)");
        assert!((0.9..=1.0).contains(&p99), "p99 {p99}");
        assert!(s.quantile(1.0) >= 0.9);
        assert_eq!(s.quantile(0.0), s.quantile(0.0)); // no NaN
    }

    #[test]
    fn merge_adds_and_maxes() {
        let a = fresh("a");
        let b = fresh("b");
        a.record(1e-4);
        b.record(2e-2);
        b.record(3e-2);
        let mut sa = a.0.snapshot("m");
        let sb = b.0.snapshot("m");
        sa.merge(&sb);
        assert_eq!(sa.count, 3);
        assert_eq!(sa.max, 3e-2);
        assert!((sa.sum - 0.0501).abs() < 1e-12);
    }

    #[test]
    fn timer_records_once_on_drop_and_once_on_stop() {
        let h = fresh("t2");
        {
            let _t = h.start_timer();
        }
        let dt = h.start_timer().stop();
        assert!(dt >= 0.0);
        h.start_timer().discard();
        assert_eq!(h.count(), 2);
    }
}
