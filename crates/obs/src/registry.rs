//! The process-global metrics registry.
//!
//! One [`MetricsRegistry`] per process, reached through the free
//! functions [`counter`], [`gauge`], and [`histogram`]: registration
//! takes a short mutex on the name map and hands back an `Arc` handle;
//! recording through a handle is lock-free. Hot call sites cache their
//! handle in a `OnceLock` so the map lock is paid once per site, not
//! per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crowd_stats::buckets::LogLinearBuckets;

use crate::hist::{HistInner, Histogram, HistogramSnapshot};

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one. No-op while recording is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. No-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeInner {
    value: AtomicI64,
    high: AtomicI64,
}

/// An instantaneous level (queue depth, jobs in flight) with a built-in
/// high-water mark. Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Set the level. No-op while recording is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.value.store(v, Ordering::Relaxed);
            self.0.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adjust the level by `delta` (negative to decrease). No-op while
    /// recording is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            let now = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
            self.0.high.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set (0 if never set above 0).
    pub fn high_water(&self) -> i64 {
        self.0.high.load(Ordering::Relaxed)
    }
}

/// The named-metric registry. Normally used through the process-global
/// instance behind [`counter`]/[`gauge`]/[`histogram`]/[`snapshot`]; a
/// standalone registry is constructible for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses the globals).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(GaugeInner::default())))
            .clone()
    }

    /// The histogram registered under `name` (default latency layout:
    /// 1µs–1000s log-linear), creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.hists.lock().expect("histogram map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(
                    HistInner::new(LogLinearBuckets::latency_seconds()),
                ))
            })
            .clone()
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, g)| GaugeSnapshot {
                name: k.clone(),
                value: g.value(),
                high_water: g.high_water(),
            })
            .collect();
        let histograms = self
            .hists
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, h)| h.0.snapshot(k))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn global() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        // Pin the journal epoch alongside the registry.
        let _ = crate::process_start();
        MetricsRegistry::new()
    })
}

/// The process-global counter registered under `name`.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// The process-global gauge registered under `name`.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// The process-global histogram registered under `name`.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// A point-in-time copy of every metric in the process-global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// One gauge's state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The registered metric name.
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
    /// Highest level ever recorded.
    pub high_water: i64,
}

/// A mergeable point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge states, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter's value (0 when absent — an unregistered
    /// counter and a never-incremented one are indistinguishable).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Fold `other` into this snapshot: counters and histogram buckets
    /// add, gauge values take `other`'s (it is the later observation)
    /// and high-waters take the max. Metrics present in only one side
    /// are kept.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => {
                    mine.value = g.value;
                    mine.high_water = mine.high_water.max(g.high_water);
                }
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Render as a JSON object (schema `crowd-obs/v1`); see
    /// [`crate::render_json`].
    pub fn to_json(&self) -> String {
        crate::render_json(self)
    }

    /// Render in Prometheus text exposition format; see
    /// [`crate::render_prometheus`].
    pub fn to_prometheus(&self) -> String {
        crate::render_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_cell() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.y.z_total");
        let b = r.counter("x.y.z_total");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(r.snapshot().counter("x.y.z_total"), 4);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let r = MetricsRegistry::new();
        let g = r.gauge("q.depth");
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.value(), 2);
        assert_eq!(g.high_water(), 8);
        g.set(1);
        let s = r.snapshot();
        let gs = s.gauge("q.depth").unwrap();
        assert_eq!((gs.value, gs.high_water), (1, 8));
    }

    #[test]
    fn snapshot_merge_conserves_totals() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.counter("c").add(10);
        r2.counter("c").add(5);
        r2.counter("only2").add(1);
        r1.histogram("h").record(1e-3);
        r2.histogram("h").record(1e-2);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counter("c"), 15);
        assert_eq!(s.counter("only2"), 1);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1e-2);
    }

    #[test]
    fn global_registry_is_shared() {
        counter("obs.test.global_total").add(2);
        assert!(snapshot().counter("obs.test.global_total") >= 2);
    }
}
