//! Registry concurrency: N writer threads hammer counters, gauges, and
//! histograms while M reader threads snapshot continuously. Totals must
//! be conserved exactly once writers quiesce, and no intermediate
//! snapshot may be "torn" — observe more than has been written, go
//! backwards between successive snapshots, or hold a histogram whose
//! bucket sum disagrees with its derived count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const READERS: usize = 3;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn totals_conserved_and_snapshots_monotone_under_contention() {
    assert!(crowd_obs::enabled(), "suite must run with recording on");
    let counter = crowd_obs::counter("obs.test.hammer_total");
    let gauge = crowd_obs::gauge("obs.test.hammer_in_flight");
    let hist = crowd_obs::histogram("obs.test.hammer_seconds");
    let base_count = crowd_obs::snapshot().counter("obs.test.hammer_total");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_counter = 0u64;
                let mut last_hist = 0u64;
                let mut snaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = crowd_obs::snapshot();
                    let c = s.counter("obs.test.hammer_total");
                    assert!(
                        c >= last_counter,
                        "counter went backwards: {last_counter} -> {c}"
                    );
                    last_counter = c;
                    if let Some(h) = s.histogram("obs.test.hammer_seconds") {
                        let bucket_sum: u64 = h.buckets.iter().sum();
                        assert_eq!(
                            bucket_sum, h.count,
                            "torn histogram: buckets disagree with count"
                        );
                        assert!(
                            h.count >= last_hist,
                            "histogram count went backwards: {last_hist} -> {}",
                            h.count
                        );
                        last_hist = h.count;
                        assert!(h.sum >= 0.0 && h.sum.is_finite());
                        assert!(h.max >= 0.0 && h.max.is_finite());
                    }
                    snaps += 1;
                }
                snaps
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let hist = hist.clone();
            thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    counter.inc();
                    gauge.add(1);
                    // Values spread across buckets; all positive.
                    hist.record(1e-6 * (1 + (w as u64 * 7 + i) % 1000) as f64);
                    gauge.add(-1);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_snaps = 0;
    for r in readers {
        total_snaps += r.join().expect("reader panicked");
    }
    assert!(total_snaps > 0, "readers never snapshotted");

    // Quiesced totals are exact.
    let s = crowd_obs::snapshot();
    assert_eq!(
        s.counter("obs.test.hammer_total") - base_count,
        WRITERS as u64 * OPS_PER_WRITER
    );
    let h = s.histogram("obs.test.hammer_seconds").expect("registered");
    assert_eq!(h.count, WRITERS as u64 * OPS_PER_WRITER);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    let g = s.gauge("obs.test.hammer_in_flight").expect("registered");
    assert_eq!(g.value, 0, "every add(1) was matched by an add(-1)");
    assert!(g.high_water >= 1 && g.high_water <= WRITERS as i64);

    // The float sum survived the CAS contention: it equals the
    // sequential sum of the same values (addition order differs, so
    // allow accumulation-order rounding, which is ~1e-12 relative).
    let expected: f64 = (0..WRITERS as u64)
        .flat_map(|w| (0..OPS_PER_WRITER).map(move |i| 1e-6 * (1 + (w * 7 + i) % 1000) as f64))
        .sum();
    assert!(
        (h.sum - expected).abs() / expected < 1e-9,
        "sum {} vs expected {expected}",
        h.sum
    );
}

#[test]
fn journal_survives_concurrent_recording_and_draining() {
    let writers: Vec<_> = (0..4)
        .map(|w| {
            thread::spawn(move || {
                for i in 0..2000u64 {
                    crowd_obs::journal::record(
                        crowd_obs::SpanKind::Converge,
                        90_000 + w * 10_000 + i,
                        1e-6,
                    );
                }
            })
        })
        .collect();
    // Drain concurrently with the writers; events must never duplicate.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..50 {
        for e in crowd_obs::journal::drain() {
            if e.key >= 90_000 {
                assert!(seen.insert(e.seq), "event {} drained twice", e.seq);
            }
        }
    }
    for w in writers {
        w.join().expect("writer panicked");
    }
    for e in crowd_obs::journal::drain() {
        if e.key >= 90_000 {
            assert!(seen.insert(e.seq), "event {} drained twice", e.seq);
        }
    }
    // Everything recorded was either drained exactly once or dropped by
    // the per-thread ring (bounded journal: loss is allowed, duplication
    // and corruption are not). 2000 < PER_THREAD_CAP, so a drain-free
    // run would keep all of them; with concurrent drains, all arrive.
    assert!(seen.len() <= 8000);
    assert!(!seen.is_empty());
}
