//! The `CROWD_OBS` off-switch contract, exercised in its own process
//! (flipping the process-global flag would race the other suites'
//! recordings). One test, sequential phases.

#[test]
fn disabling_stops_recording_without_breaking_reads() {
    assert!(crowd_obs::enabled(), "starts enabled without CROWD_OBS");

    let c = crowd_obs::counter("obs.test.switch_total");
    let g = crowd_obs::gauge("obs.test.switch_depth");
    let h = crowd_obs::histogram("obs.test.switch_seconds");

    c.inc();
    g.set(5);
    h.record(1e-3);
    crowd_obs::journal::record(crowd_obs::SpanKind::DrainTick, 1, 1e-3);

    crowd_obs::set_enabled(false);
    assert!(!crowd_obs::enabled());

    // Everything below must be dropped…
    c.add(100);
    g.set(50);
    g.add(7);
    h.record(2e-3);
    {
        let _t = h.start_timer(); // no-op timer: never reads the clock
    }
    crowd_obs::journal::record(crowd_obs::SpanKind::DrainTick, 2, 1e-3);

    // …while registration and reads keep working.
    let s = crowd_obs::snapshot();
    assert_eq!(s.counter("obs.test.switch_total"), 1);
    let gs = s.gauge("obs.test.switch_depth").unwrap();
    assert_eq!((gs.value, gs.high_water), (5, 5));
    let hs = s.histogram("obs.test.switch_seconds").unwrap();
    assert_eq!(hs.count, 1);
    let events = crowd_obs::journal::drain();
    assert!(events.iter().any(|e| e.key == 1));
    assert!(!events.iter().any(|e| e.key == 2), "recorded while off");

    // Re-enable: recording resumes on the same cells.
    crowd_obs::set_enabled(true);
    c.inc();
    h.record(3e-3);
    let s = crowd_obs::snapshot();
    assert_eq!(s.counter("obs.test.switch_total"), 2);
    assert_eq!(s.histogram("obs.test.switch_seconds").unwrap().count, 2);
}
