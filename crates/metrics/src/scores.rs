//! Task-level quality metrics: Accuracy, F1, MAE, RMSE.

use crowd_data::{Answer, Dataset};

/// Accuracy (Equation 3): fraction of evaluated tasks whose inferred
/// truth matches the ground truth. Tasks without ground truth are
/// skipped; returns `f64::NAN` when nothing is evaluable — a missing
/// measurement must stay distinguishable from a genuinely zero score.
pub fn accuracy(dataset: &Dataset, inferred: &[Answer]) -> f64 {
    accuracy_on(dataset, inferred, None)
}

/// [`accuracy`] restricted to an evaluation subset of task indices (the
/// hidden-test protocol evaluates on `T − T'`).
pub fn accuracy_on(dataset: &Dataset, inferred: &[Answer], eval: Option<&[usize]>) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for_each_eval_task(dataset, eval, |task, truth| {
        total += 1;
        if answers_equal(&inferred[task], truth) {
            correct += 1;
        }
    });
    if total == 0 {
        return f64::NAN;
    }
    correct as f64 / total as f64
}

/// F1-score (Equation 4): harmonic mean of precision and recall on the
/// positive class (label 0, 'T'). Meaningful for decision-making tasks
/// with class imbalance such as D_Product. `f64::NAN` when no label
/// pair is evaluable at all (zero *positive hits* among evaluated tasks
/// is still the conventional `0.0`).
pub fn f1_score(dataset: &Dataset, inferred: &[Answer]) -> f64 {
    f1_score_on(dataset, inferred, None)
}

/// [`f1_score`] restricted to an evaluation subset.
pub fn f1_score_on(dataset: &Dataset, inferred: &[Answer], eval: Option<&[usize]>) -> f64 {
    let mut evaluated = 0usize;
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for_each_eval_task(dataset, eval, |task, truth| {
        let (Answer::Label(p), Answer::Label(g)) = (&inferred[task], truth) else {
            return;
        };
        evaluated += 1;
        match (*p, *g) {
            (0, 0) => tp += 1,
            (0, _) => fp += 1,
            (_, 0) => fn_ += 1,
            _ => {}
        }
    });
    if evaluated == 0 {
        return f64::NAN;
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    }
}

/// Mean absolute error (Equation 5) for numeric estimates; `f64::NAN`
/// when no numeric task is evaluable.
pub fn mae(dataset: &Dataset, inferred: &[Answer]) -> f64 {
    mae_on(dataset, inferred, None)
}

/// [`mae`] restricted to an evaluation subset.
pub fn mae_on(dataset: &Dataset, inferred: &[Answer], eval: Option<&[usize]>) -> f64 {
    let mut total = 0usize;
    let mut err = 0.0;
    for_each_eval_task(dataset, eval, |task, truth| {
        let (Answer::Numeric(p), Answer::Numeric(g)) = (&inferred[task], truth) else {
            return;
        };
        total += 1;
        err += (p - g).abs();
    });
    if total == 0 {
        return f64::NAN;
    }
    err / total as f64
}

/// Root mean square error (Equation 5) — penalises large errors more
/// than MAE; `f64::NAN` when no numeric task is evaluable.
pub fn rmse(dataset: &Dataset, inferred: &[Answer]) -> f64 {
    rmse_on(dataset, inferred, None)
}

/// [`rmse`] restricted to an evaluation subset.
pub fn rmse_on(dataset: &Dataset, inferred: &[Answer], eval: Option<&[usize]>) -> f64 {
    let mut total = 0usize;
    let mut err = 0.0;
    for_each_eval_task(dataset, eval, |task, truth| {
        let (Answer::Numeric(p), Answer::Numeric(g)) = (&inferred[task], truth) else {
            return;
        };
        total += 1;
        err += (p - g).powi(2);
    });
    if total == 0 {
        return f64::NAN;
    }
    (err / total as f64).sqrt()
}

/// Exact comparison for labels; numeric answers compare with a tight
/// relative tolerance (inference returns floats).
fn answers_equal(a: &Answer, b: &Answer) -> bool {
    match (a, b) {
        (Answer::Label(x), Answer::Label(y)) => x == y,
        (Answer::Numeric(x), Answer::Numeric(y)) => (x - y).abs() < 1e-9,
        _ => false,
    }
}

fn for_each_eval_task(
    dataset: &Dataset,
    eval: Option<&[usize]>,
    mut f: impl FnMut(usize, &Answer),
) {
    match eval {
        Some(tasks) => {
            for &task in tasks {
                if let Some(truth) = dataset.truth(task) {
                    f(task, &truth);
                }
            }
        }
        None => {
            for (task, truth) in dataset.truths().iter().enumerate() {
                if let Some(t) = truth {
                    f(task, t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{DatasetBuilder, TaskType};

    fn binary_dataset() -> Dataset {
        let mut b = DatasetBuilder::new("m", TaskType::DecisionMaking, 4, 1);
        b.add_label(0, 0, 0).unwrap();
        for t in 0..4 {
            b.set_truth_label(t, if t < 2 { 0 } else { 1 }).unwrap();
        }
        b.build()
    }

    #[test]
    fn accuracy_counts_matches() {
        let d = binary_dataset();
        let inferred = vec![
            Answer::Label(0),
            Answer::Label(1),
            Answer::Label(1),
            Answer::Label(1),
        ];
        assert!((accuracy(&d, &inferred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_on_subset() {
        let d = binary_dataset();
        let inferred = vec![
            Answer::Label(0),
            Answer::Label(1),
            Answer::Label(1),
            Answer::Label(1),
        ];
        // Evaluate only on tasks {1}: wrong there.
        assert_eq!(accuracy_on(&d, &inferred, Some(&[1])), 0.0);
        assert_eq!(accuracy_on(&d, &inferred, Some(&[0, 2])), 1.0);
    }

    #[test]
    fn f1_matches_hand_computation() {
        let d = binary_dataset(); // truths: T T F F
        let inferred = vec![
            Answer::Label(0), // tp
            Answer::Label(1), // fn
            Answer::Label(0), // fp
            Answer::Label(1), // tn
        ];
        // precision = 1/2, recall = 1/2 → F1 = 1/2.
        assert!((f1_score(&d, &inferred) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_no_positive_predictions_hit() {
        let d = binary_dataset();
        let inferred = vec![Answer::Label(1); 4];
        assert_eq!(f1_score(&d, &inferred), 0.0);
    }

    #[test]
    fn all_f_strategy_has_high_accuracy_low_f1() {
        // The paper's motivating observation for F1 on D_Product: always
        // answering 'F' gets 88% accuracy but finds no equal pairs.
        let mut b = DatasetBuilder::new("imb", TaskType::DecisionMaking, 100, 1);
        b.add_label(0, 0, 1).unwrap();
        for t in 0..100 {
            b.set_truth_label(t, if t < 12 { 0 } else { 1 }).unwrap();
        }
        let d = b.build();
        let all_f = vec![Answer::Label(1); 100];
        assert!((accuracy(&d, &all_f) - 0.88).abs() < 1e-12);
        assert_eq!(f1_score(&d, &all_f), 0.0);
    }

    #[test]
    fn mae_rmse_basics() {
        let mut b = DatasetBuilder::new("n", TaskType::Numeric, 2, 1);
        b.add_numeric(0, 0, 0.0).unwrap();
        b.set_truth_numeric(0, 1.0).unwrap();
        b.set_truth_numeric(1, -2.0).unwrap();
        let d = b.build();
        let inferred = vec![Answer::Numeric(2.0), Answer::Numeric(-2.0)];
        assert!((mae(&d, &inferred) - 0.5).abs() < 1e-12);
        assert!((rmse(&d, &inferred) - (0.5f64).sqrt()).abs() < 1e-12);
        // RMSE >= MAE always.
        assert!(rmse(&d, &inferred) >= mae(&d, &inferred));
    }

    #[test]
    fn skips_tasks_without_truth() {
        let mut b = DatasetBuilder::new("p", TaskType::DecisionMaking, 3, 1);
        b.add_label(0, 0, 0).unwrap();
        b.set_truth_label(0, 0).unwrap();
        // tasks 1, 2 have no truth
        let d = b.build();
        let inferred = vec![Answer::Label(0), Answer::Label(1), Answer::Label(1)];
        assert_eq!(accuracy(&d, &inferred), 1.0);
    }

    #[test]
    fn nothing_evaluable_is_nan_not_zero() {
        // Regression: the `total.max(1)` empty-denominator pattern used
        // to report 0.0 on datasets with no evaluable task —
        // indistinguishable from a genuinely zero score.
        let mut b = DatasetBuilder::new("nt", TaskType::DecisionMaking, 2, 1);
        b.add_label(0, 0, 0).unwrap();
        // no ground truth at all
        let d = b.build();
        let inferred = vec![Answer::Label(0), Answer::Label(1)];
        assert!(accuracy(&d, &inferred).is_nan());
        assert!(f1_score(&d, &inferred).is_nan());
        // Same for the restricted-subset entry points on an empty subset.
        assert!(accuracy_on(&d, &inferred, Some(&[])).is_nan());
        assert!(f1_score_on(&d, &inferred, Some(&[])).is_nan());
        // Numeric metrics: a numeric dataset with no truths.
        let bn = DatasetBuilder::new("nn", TaskType::Numeric, 2, 1);
        let dn = bn.build();
        let inf_n = vec![Answer::Numeric(1.0), Answer::Numeric(2.0)];
        assert!(mae(&dn, &inf_n).is_nan());
        assert!(rmse(&dn, &inf_n).is_nan());
        // But an evaluable-yet-wrong run still scores a real 0.0.
        let mut b2 = DatasetBuilder::new("z", TaskType::DecisionMaking, 1, 1);
        b2.add_label(0, 0, 0).unwrap();
        b2.set_truth_label(0, 0).unwrap();
        let d2 = b2.build();
        assert_eq!(accuracy(&d2, &[Answer::Label(1)]), 0.0);
        assert_eq!(f1_score(&d2, &[Answer::Label(1)]), 0.0);
    }
}
