//! Per-worker statistics: redundancy (Figure 2) and quality (Figure 3).

use crowd_data::{Answer, Dataset};

/// Number of tasks each worker answered — the "worker redundancy" whose
/// long-tail histogram is Figure 2.
pub fn worker_redundancies(dataset: &Dataset) -> Vec<usize> {
    (0..dataset.num_workers())
        .map(|w| dataset.worker_degree(w))
        .collect()
}

/// Per-worker accuracy against ground truth (Figures 3a–3d):
/// `Σ_{t∈T^w} 1{v^w_t = v*_t} / |scorable T^w|`. `None` for workers with
/// no answers on truth-labelled tasks.
pub fn worker_accuracies(dataset: &Dataset) -> Vec<Option<f64>> {
    (0..dataset.num_workers())
        .map(|w| {
            let mut total = 0usize;
            let mut correct = 0usize;
            for r in dataset.answers_by_worker(w) {
                if let Some(truth) = dataset.truth(r.task) {
                    total += 1;
                    if r.answer == truth {
                        correct += 1;
                    }
                }
            }
            if total > 0 {
                Some(correct as f64 / total as f64)
            } else {
                None
            }
        })
        .collect()
}

/// Per-worker RMSE against ground truth for numeric datasets (Figure 3e).
/// `None` for workers without scorable answers or on categorical data.
pub fn worker_rmses(dataset: &Dataset) -> Vec<Option<f64>> {
    (0..dataset.num_workers())
        .map(|w| {
            let mut total = 0usize;
            let mut sq = 0.0;
            for r in dataset.answers_by_worker(w) {
                if let (Answer::Numeric(v), Some(Answer::Numeric(t))) =
                    (r.answer, dataset.truth(r.task))
                {
                    total += 1;
                    sq += (v - t).powi(2);
                }
            }
            if total > 0 {
                Some((sq / total as f64).sqrt())
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::toy::paper_example;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn redundancies_match_degrees() {
        let d = paper_example();
        assert_eq!(worker_redundancies(&d), vec![6, 5, 6]);
    }

    #[test]
    fn toy_worker_accuracies() {
        let d = paper_example();
        let acc = worker_accuracies(&d);
        assert!((acc[0].unwrap() - 2.0 / 6.0).abs() < 1e-12);
        assert!((acc[1].unwrap() - 2.0 / 5.0).abs() < 1e-12);
        assert!((acc[2].unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unscorable_worker_is_none() {
        let mut b = DatasetBuilder::new("u", TaskType::DecisionMaking, 2, 2);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(1, 1, 0).unwrap();
        b.set_truth_label(0, 0).unwrap(); // only task 0 has truth
        let d = b.build();
        let acc = worker_accuracies(&d);
        assert_eq!(acc[0], Some(1.0));
        assert_eq!(acc[1], None);
    }

    #[test]
    fn numeric_rmse_per_worker() {
        let mut b = DatasetBuilder::new("n", TaskType::Numeric, 2, 2);
        b.add_numeric(0, 0, 3.0).unwrap();
        b.add_numeric(1, 0, -1.0).unwrap();
        b.add_numeric(0, 1, 0.0).unwrap();
        b.set_truth_numeric(0, 0.0).unwrap();
        b.set_truth_numeric(1, 0.0).unwrap();
        let d = b.build();
        let rmse = worker_rmses(&d);
        // worker 0: errors {3, −1} → sqrt(10/2).
        assert!((rmse[0].unwrap() - (5.0f64).sqrt()).abs() < 1e-12);
        assert!((rmse[1].unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_none_on_categorical() {
        let d = paper_example();
        assert!(worker_rmses(&d).iter().all(|r| r.is_none()));
    }
}
