//! # crowd-metrics — the paper's evaluation metrics
//!
//! Accuracy (Equation 3), F1-score on the positive class (Equation 4),
//! MAE and RMSE (Equation 5), the data-consistency statistic `C` of
//! Section 6.2.1 (entropy-based for categorical tasks, median-deviation
//! for numeric tasks), and per-worker statistics (redundancy, Figure 2;
//! quality, Figure 3).
//!
//! All task-level metrics skip tasks without ground truth (S_Rel and
//! S_Adult publish truth only for a subset) and accept an optional
//! evaluation mask so the hidden-test experiments (§6.3.3) can score only
//! the non-golden tasks.

#![warn(missing_docs)]

pub mod consistency;
pub mod scores;
pub mod worker;

pub use consistency::{consistency_categorical, consistency_numeric};
pub use scores::{accuracy, accuracy_on, f1_score, f1_score_on, mae, mae_on, rmse, rmse_on};
pub use worker::{worker_accuracies, worker_redundancies, worker_rmses};
