//! The data-consistency statistic `C` of Section 6.2.1.
//!
//! For categorical datasets, `C` is the average per-task entropy of the
//! answer distribution, in log base `ℓ` so `C ∈ [0, 1]` (0 = all workers
//! agree). The paper reports 0.38 / 0.85 / 0.82 / 0.39 for the four
//! categorical datasets. For numeric datasets, `C` is the average RMS
//! deviation of answers from the per-task median (20.44 for N_Emotion).

use crowd_data::Dataset;
use crowd_stats::summary::median;

/// Average normalized answer entropy:
/// `C = −(1/n) Σ_i Σ_j (n_ij / Σ_j n_ij) log_ℓ (n_ij / Σ_j n_ij)`.
///
/// Tasks with no answers contribute zero (they carry no disagreement
/// evidence). Returns `None` on numeric datasets.
pub fn consistency_categorical(dataset: &Dataset) -> Option<f64> {
    let l = dataset.num_choices()? as usize;
    if l < 2 {
        return Some(0.0);
    }
    let ln_l = (l as f64).ln();
    let mut total_entropy = 0.0;
    for task in 0..dataset.num_tasks() {
        let mut counts = vec![0.0f64; l];
        let mut n = 0.0;
        for r in dataset.answers_for_task(task) {
            counts[r.answer.label().expect("categorical") as usize] += 1.0;
            n += 1.0;
        }
        if n == 0.0 {
            continue;
        }
        let mut h = 0.0;
        for c in counts {
            if c > 0.0 {
                let p = c / n;
                h -= p * (p.ln() / ln_l);
            }
        }
        total_entropy += h;
    }
    Some(total_entropy / dataset.num_tasks().max(1) as f64)
}

/// Average RMS deviation from the per-task median:
/// `C = (1/n) Σ_i sqrt( Σ_{w∈W_i} (v_i^w − median_i)² / |W_i| )`.
///
/// Returns `None` on categorical datasets.
pub fn consistency_numeric(dataset: &Dataset) -> Option<f64> {
    if dataset.task_type().is_categorical() {
        return None;
    }
    let mut total = 0.0;
    for task in 0..dataset.num_tasks() {
        let values: Vec<f64> = dataset
            .answers_for_task(task)
            .map(|r| r.answer.numeric().expect("numeric"))
            .collect();
        if values.is_empty() {
            continue;
        }
        let med = median(&values);
        let ms: f64 = values.iter().map(|v| (v - med).powi(2)).sum::<f64>() / values.len() as f64;
        total += ms.sqrt();
    }
    Some(total / dataset.num_tasks().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{DatasetBuilder, TaskType};

    #[test]
    fn unanimous_answers_have_zero_entropy() {
        let mut b = DatasetBuilder::new("u", TaskType::DecisionMaking, 2, 3);
        for t in 0..2 {
            for w in 0..3 {
                b.add_label(t, w, 0).unwrap();
            }
        }
        let d = b.build();
        assert!(consistency_categorical(&d).unwrap() < 1e-12);
    }

    #[test]
    fn maximal_disagreement_has_entropy_one() {
        let mut b = DatasetBuilder::new("d", TaskType::DecisionMaking, 1, 2);
        b.add_label(0, 0, 0).unwrap();
        b.add_label(0, 1, 1).unwrap();
        let d = b.build();
        assert!((consistency_categorical(&d).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_base_l_normalises_multiclass() {
        // 4 workers, 4 distinct answers on a 4-choice task: entropy 1.
        let mut b = DatasetBuilder::new("m", TaskType::SingleChoice { choices: 4 }, 1, 4);
        for w in 0..4 {
            b.add_label(0, w, w as u8).unwrap();
        }
        let d = b.build();
        assert!((consistency_categorical(&d).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_consistency_is_rms_around_median() {
        let mut b = DatasetBuilder::new("n", TaskType::Numeric, 1, 3);
        b.add_numeric(0, 0, 0.0).unwrap();
        b.add_numeric(0, 1, 10.0).unwrap();
        b.add_numeric(0, 2, 20.0).unwrap();
        let d = b.build();
        // median 10, deviations {−10, 0, 10} → RMS sqrt(200/3).
        let expected = (200.0f64 / 3.0).sqrt();
        assert!((consistency_numeric(&d).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn wrong_task_type_returns_none() {
        let mut b = DatasetBuilder::new("x", TaskType::Numeric, 1, 1);
        b.add_numeric(0, 0, 1.0).unwrap();
        let d = b.build();
        assert!(consistency_categorical(&d).is_none());

        let mut b = DatasetBuilder::new("y", TaskType::DecisionMaking, 1, 1);
        b.add_label(0, 0, 0).unwrap();
        let d = b.build();
        assert!(consistency_numeric(&d).is_none());
    }

    #[test]
    fn paper_datasets_land_in_reported_bands() {
        use crowd_data::datasets::PaperDataset;
        // The paper reports C = 0.38 (D_Product), 0.85 (D_PosSent),
        // 0.82 (S_Rel), 0.39 (S_Adult)… our simulators are tuned to the
        // quality marginals, so we check loose bands: low-conflict
        // datasets stay below the high-conflict ones.
        let dp = consistency_categorical(&PaperDataset::DProduct.generate(0.1, 3)).unwrap();
        let sr = consistency_categorical(&PaperDataset::SRel.generate(0.02, 3)).unwrap();
        assert!(dp < sr, "D_Product C {dp} should be below S_Rel C {sr}");
        let ne = consistency_numeric(&PaperDataset::NEmotion.generate(0.5, 3)).unwrap();
        assert!((ne - 20.44).abs() < 10.0, "N_Emotion C {ne} vs paper 20.44");
    }
}
