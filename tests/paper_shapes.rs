//! Regression tests pinning the paper's qualitative findings — the
//! "shapes" the reproduction must preserve even though absolute numbers
//! come from simulated data (see EXPERIMENTS.md for the full
//! paper-vs-measured record).

use crowd_truth::core::{InferenceOptions, Method};
use crowd_truth::data::datasets::PaperDataset;
use crowd_truth::data::subsample_redundancy;
use crowd_truth::metrics::{accuracy, f1_score, mae};

fn acc(method: Method, dataset: &crowd_truth::data::Dataset, seed: u64) -> f64 {
    let r = method
        .build()
        .infer(dataset, &InferenceOptions::seeded(seed))
        .unwrap();
    accuracy(dataset, &r.truths)
}

fn f1(method: Method, dataset: &crowd_truth::data::Dataset, seed: u64) -> f64 {
    let r = method
        .build()
        .infer(dataset, &InferenceOptions::seeded(seed))
        .unwrap();
    f1_score(dataset, &r.truths)
}

/// §6.3.1(4) / Table 6: on the imbalanced D_Product, confusion-matrix
/// methods beat MV on F1 (D&S 71.6% vs MV 59.1% in the paper) because a
/// single probability cannot express `q_TT ≠ q_FF`.
#[test]
fn confusion_matrix_beats_mv_on_f1_for_entity_resolution() {
    let mut wins = 0;
    let trials = 3;
    for seed in 0..trials {
        let d = PaperDataset::DProduct.generate(0.25, 100 + seed);
        let ds_f1 = f1(Method::Ds, &d, seed);
        let mv_f1 = f1(Method::Mv, &d, seed);
        if ds_f1 > mv_f1 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "D&S F1 beat MV in only {wins}/{trials} trials");
}

/// Table 6: KOS's accuracy is competitive on D_Product but its F1
/// collapses (50.3% vs D&S 71.6%) — the balanced-class assumption fails
/// on the minority class.
#[test]
fn kos_f1_trails_ds_on_imbalanced_data() {
    let d = PaperDataset::DProduct.generate(0.25, 500);
    assert!(f1(Method::Kos, &d, 1) <= f1(Method::Ds, &d, 1) + 0.03);
}

/// Figure 4(c): on D_PosSent quality rises steeply over r ∈ [1, 10]
/// ("improving around 20%") then flattens.
#[test]
fn redundancy_gains_saturate() {
    let d = PaperDataset::DPosSent.generate(0.3, 11);
    let r1 = subsample_redundancy(&d, 1, 1);
    let r10 = subsample_redundancy(&d, 10, 1);
    let r20 = subsample_redundancy(&d, 20, 1);
    let (a1, a10, a20) = (
        acc(Method::Ds, &r1, 2),
        acc(Method::Ds, &r10, 2),
        acc(Method::Ds, &r20, 2),
    );
    assert!(
        a10 - a1 > 0.08,
        "expected a steep early gain: r1 {a1} → r10 {a10}"
    );
    assert!(
        (a20 - a10).abs() < 0.05,
        "expected saturation: r10 {a10} → r20 {a20}"
    );
}

/// Table 6's S_Adult column: every method lands in a narrow band (the
/// paper's spread over 10 methods is 35.3%–36.5%) — no weighting scheme
/// separates methods when the crowd is collectively blind on the gold
/// tasks.
#[test]
fn s_adult_methods_are_stuck_in_a_narrow_band() {
    let d = PaperDataset::SAdult.generate(0.2, 77);
    let accs: Vec<(Method, f64)> = Method::for_task_type(d.task_type())
        .into_iter()
        .map(|m| (m, acc(m, &d, 3)))
        .collect();
    let lo = accs.iter().map(|(_, a)| *a).fold(f64::INFINITY, f64::min);
    let hi = accs.iter().map(|(_, a)| *a).fold(0.0, f64::max);
    assert!(
        hi - lo < 0.12,
        "methods should cluster on S_Adult, got spread [{lo:.3}, {hi:.3}]: {accs:?}"
    );
    assert!(
        (0.2..=0.55).contains(&lo) && hi < 0.6,
        "band should sit near the paper's ≈36%: [{lo:.3}, {hi:.3}]"
    );
}

/// Table 6's N_Emotion column: Mean is competitive with (the paper: better
/// than) every sophisticated numeric method.
#[test]
fn mean_is_competitive_on_numeric_tasks() {
    let d = PaperDataset::NEmotion.generate(1.0, 21);
    let mean_mae = {
        let r = Method::Mean
            .build()
            .infer(&d, &InferenceOptions::seeded(4))
            .unwrap();
        mae(&d, &r.truths)
    };
    for method in [Method::Catd, Method::Pm, Method::LfcN, Method::Median] {
        let r = method
            .build()
            .infer(&d, &InferenceOptions::seeded(4))
            .unwrap();
        let m = mae(&d, &r.truths);
        assert!(
            m > mean_mae - 1.5,
            "{} (MAE {m:.2}) should not beat Mean (MAE {mean_mae:.2}) decisively",
            method.name()
        );
    }
}

/// §6.3.1(2): "There is no method that performs consistently the best" —
/// checked across our two decision-making datasets: the per-dataset
/// winners differ or at least several methods tie within noise.
#[test]
fn no_single_dominant_method_across_datasets() {
    let product = PaperDataset::DProduct.generate(0.2, 55);
    let possent = PaperDataset::DPosSent.generate(0.3, 55);
    let methods = [
        Method::Mv,
        Method::Zc,
        Method::Ds,
        Method::Lfc,
        Method::Bcc,
        Method::Pm,
    ];
    let top = |d: &crowd_truth::data::Dataset| -> Vec<Method> {
        let scored: Vec<(Method, f64)> = methods.iter().map(|&m| (m, acc(m, d, 6))).collect();
        let best = scored.iter().map(|(_, a)| *a).fold(0.0, f64::max);
        scored
            .into_iter()
            .filter(|(_, a)| best - a < 0.01)
            .map(|(m, _)| m)
            .collect()
    };
    let winners_product = top(&product);
    let winners_possent = top(&possent);
    // Either different winners, or a multi-way tie — both falsify "one
    // method dominates".
    let dominated = winners_product.len() == 1
        && winners_possent.len() == 1
        && winners_product[0] == winners_possent[0]
        && winners_product[0] != Method::Mv; // MV "winning" twice on easy data is a tie artifact
    assert!(
        !dominated,
        "a single method dominated both datasets: {winners_product:?} / {winners_possent:?}"
    );
}

/// §6.2.2 / Figure 2: worker participation is long-tailed on every
/// dataset — the busiest decile holds a disproportionate answer share.
#[test]
fn worker_participation_is_long_tailed_everywhere() {
    // D_PosSent and N_Emotion are partial exceptions in the paper too
    // (Figures 2b/2e): with redundancy 20-of-85 and 10-of-38 workers,
    // most workers answer a large share of all tasks, so the tail is
    // weak. The three large datasets carry the long-tail claim.
    for ds in [
        PaperDataset::DProduct,
        PaperDataset::SRel,
        PaperDataset::SAdult,
    ] {
        let d = ds.generate(0.15, 9);
        let mut degrees: Vec<usize> = (0..d.num_workers()).map(|w| d.worker_degree(w)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let decile = (degrees.len() / 10).max(1);
        let top: usize = degrees[..decile].iter().sum();
        assert!(
            top as f64 > 1.5 * total as f64 * decile as f64 / degrees.len() as f64,
            "{}: top decile holds {top}/{total}, not disproportionate",
            ds.name()
        );
    }
}

/// Table 6: VI-BP degrades badly on the imbalanced D_Product (64.6% vs
/// D&S 93.7% in the paper); pin the direction.
#[test]
fn vi_bp_trails_ds_on_imbalanced_data() {
    let d = PaperDataset::DProduct.generate(0.2, 33);
    assert!(acc(Method::ViBp, &d, 1) <= acc(Method::Ds, &d, 1) + 0.02);
}
