//! Failure-injection tests: adversarial workers, spammer floods,
//! degenerate logs, and convergence behaviour under stress.
//!
//! The paper's motivation (§1) distinguishes spammers ("randomly answer
//! tasks in order to deceive money") from malicious workers
//! ("intentionally give wrong answers"). These tests inject both and
//! check the methods degrade the way their models predict: confusion
//! matrices can *exploit* a consistent liar, one-coin models can only
//! discount them, and majority voting absorbs the full damage.

use crowd_truth::core::{InferenceOptions, Method, WorkerQuality};
use crowd_truth::data::{Answer, Dataset, DatasetBuilder, TaskType};
use crowd_truth::metrics::accuracy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a decision-making log with `honest` workers at the given
/// accuracy, plus `liars` workers who *always* answer the opposite of the
/// truth, plus `spammers` answering uniformly. Every worker answers every
/// task.
fn adversarial_log(
    tasks: usize,
    honest: usize,
    honest_acc: f64,
    liars: usize,
    spammers: usize,
    seed: u64,
) -> Dataset {
    let workers = honest + liars + spammers;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new("adv", TaskType::DecisionMaking, tasks, workers);
    for t in 0..tasks {
        let truth: u8 = rng.gen_range(0..2);
        b.set_truth_label(t, truth).unwrap();
        let mut w = 0;
        for _ in 0..honest {
            let ans = if rng.gen_range(0.0..1.0) < honest_acc {
                truth
            } else {
                1 - truth
            };
            b.add_label(t, w, ans).unwrap();
            w += 1;
        }
        for _ in 0..liars {
            b.add_label(t, w, 1 - truth).unwrap();
            w += 1;
        }
        for _ in 0..spammers {
            b.add_label(t, w, rng.gen_range(0..2)).unwrap();
            w += 1;
        }
    }
    b.build()
}

fn run(method: Method, d: &Dataset) -> f64 {
    let r = method
        .build()
        .infer(d, &InferenceOptions::seeded(5))
        .unwrap();
    accuracy(d, &r.truths)
}

#[test]
fn consistent_liars_sink_mv_but_not_ds() {
    // 5 honest workers at 0.85 vs 3 consistent liars: the vote margin is
    // thin (expected 4.25 vs 3.75), so MV loses many tasks; D&S learns
    // the liars' inverted confusion matrices and recovers the truth from
    // them. (With liars in the *majority* the label-switched solution is
    // the global likelihood optimum and no unsupervised method can
    // escape it — that regime is fundamentally unidentifiable.)
    let d = adversarial_log(400, 5, 0.85, 3, 0, 1);
    let mv = run(Method::Mv, &d);
    let ds = run(Method::Ds, &d);
    assert!(
        mv < 0.78,
        "MV should suffer under near-tied liars, got {mv}"
    );
    assert!(ds > 0.88, "D&S should exploit consistent liars, got {ds}");
    assert!(ds > mv + 0.1, "D&S {ds} should clearly beat MV {mv}");
}

#[test]
fn ds_learns_inverted_confusion_for_liars() {
    let d = adversarial_log(400, 4, 0.8, 2, 0, 2);
    let r = Method::Ds
        .build()
        .infer(&d, &InferenceOptions::seeded(5))
        .unwrap();
    // Workers 4 and 5 are the liars; their learned matrices should have
    // tiny diagonals.
    for liar in [4usize, 5] {
        let WorkerQuality::Confusion(m) = &r.worker_quality[liar] else {
            panic!("expected confusion matrix");
        };
        let diag = (m[0][0] + m[1][1]) / 2.0;
        assert!(
            diag < 0.15,
            "liar {liar} diagonal should be near 0, got {diag}"
        );
    }
}

#[test]
fn spammer_flood_degrades_gracefully() {
    // 5 honest workers at 0.85 plus increasing spammer floods: quality
    // should fall monotonically-ish but stay usable while honest workers
    // are identifiable.
    let baseline = run(Method::Lfc, &adversarial_log(300, 5, 0.85, 0, 0, 3));
    let flooded = run(Method::Lfc, &adversarial_log(300, 5, 0.85, 0, 10, 3));
    assert!(baseline > 0.9, "baseline {baseline}");
    assert!(
        flooded > 0.75,
        "LFC should still find the honest minority under a 2:1 spammer flood, got {flooded}"
    );
}

#[test]
fn zc_discounts_spammers_to_half() {
    let d = adversarial_log(400, 3, 0.9, 0, 3, 4);
    let r = Method::Zc
        .build()
        .infer(&d, &InferenceOptions::seeded(5))
        .unwrap();
    for spammer in 3..6 {
        let q = r.worker_quality[spammer].scalar().unwrap();
        assert!(
            (q - 0.5).abs() < 0.12,
            "spammer {spammer} quality should approach 0.5, got {q}"
        );
    }
    for honest in 0..3 {
        let q = r.worker_quality[honest].scalar().unwrap();
        assert!(
            q > 0.8,
            "honest worker {honest} quality should stay high, got {q}"
        );
    }
}

#[test]
fn unanimous_log_is_a_fixed_point() {
    // Everyone gives the same answer on every task: every method must
    // return exactly that answer and converge immediately-ish.
    let mut b = DatasetBuilder::new("unan", TaskType::DecisionMaking, 30, 5);
    for t in 0..30 {
        for w in 0..5 {
            b.add_label(t, w, 1).unwrap();
        }
        b.set_truth_label(t, 1).unwrap();
    }
    let d = b.build();
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let r = method
            .build()
            .infer(&d, &InferenceOptions::seeded(0))
            .unwrap();
        let acc = accuracy(&d, &r.truths);
        assert!(
            (acc - 1.0).abs() < 1e-9,
            "{} broke on a unanimous log: {acc}",
            method.name()
        );
    }
}

#[test]
fn single_worker_single_task_edge() {
    let mut b = DatasetBuilder::new("one", TaskType::DecisionMaking, 1, 1);
    b.add_label(0, 0, 0).unwrap();
    b.set_truth_label(0, 0).unwrap();
    let d = b.build();
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let r = method
            .build()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap_or_else(|e| panic!("{} failed on 1×1 log: {e}", method.name()));
        assert_eq!(r.truths.len(), 1, "{}", method.name());
    }
    // Numeric counterpart.
    let mut b = DatasetBuilder::new("one_n", TaskType::Numeric, 1, 1);
    b.add_numeric(0, 0, 5.0).unwrap();
    let d = b.build();
    for method in Method::for_task_type(TaskType::Numeric) {
        let r = method
            .build()
            .infer(&d, &InferenceOptions::seeded(1))
            .unwrap();
        assert!(
            (r.truths[0].numeric().unwrap() - 5.0).abs() < 1e-9,
            "{}",
            method.name()
        );
    }
}

#[test]
fn iteration_cap_is_respected_under_oscillation_pressure() {
    // A perfectly contradictory log (two workers always disagreeing)
    // gives EM nothing to converge on beyond symmetry; the iteration cap
    // must bound the loop for every iterative method.
    let mut b = DatasetBuilder::new("osc", TaskType::DecisionMaking, 50, 2);
    for t in 0..50 {
        b.add_label(t, 0, 0).unwrap();
        b.add_label(t, 1, 1).unwrap();
    }
    let d = b.build();
    let opts = InferenceOptions {
        max_iterations: 7,
        ..InferenceOptions::seeded(2)
    };
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let r = method.build().infer(&d, &opts).unwrap();
        // Gibbs samplers count sweeps, message passing counts rounds;
        // both are configured independently of max_iterations. For the
        // tracker-driven methods the cap must hold exactly.
        if matches!(
            method,
            Method::Zc
                | Method::Glad
                | Method::Ds
                | Method::Lfc
                | Method::Pm
                | Method::Catd
                | Method::Minimax
                | Method::Multi
                | Method::ViMf
                | Method::ViBp
        ) {
            assert!(
                r.iterations <= 7,
                "{} ran {} iterations past the cap",
                method.name(),
                r.iterations
            );
        }
    }
}

#[test]
fn golden_tasks_conflicting_with_answers_win() {
    // Reveal golden truths that contradict every worker's answer: the
    // clamp must dominate the likelihood for golden-capable methods.
    let mut b = DatasetBuilder::new("conflict", TaskType::DecisionMaking, 20, 4);
    for t in 0..20 {
        for w in 0..4 {
            b.add_label(t, w, 0).unwrap(); // everyone says 'T'
        }
        b.set_truth_label(t, 1).unwrap(); // truth is 'F'
    }
    let d = b.build();
    let revealed: Vec<Option<Answer>> = (0..20)
        .map(|t| if t < 10 { Some(Answer::Label(1)) } else { None })
        .collect();
    let opts = InferenceOptions {
        golden: Some(revealed),
        ..InferenceOptions::seeded(3)
    };
    for method in [
        Method::Zc,
        Method::Ds,
        Method::Lfc,
        Method::Pm,
        Method::Catd,
    ] {
        let r = method.build().infer(&d, &opts).unwrap();
        for t in 0..10 {
            assert_eq!(
                r.truths[t],
                Answer::Label(1),
                "{} let the answers override a golden truth",
                method.name()
            );
        }
    }
}

#[test]
fn golden_reveal_never_hurts_in_a_spammer_heavy_regime() {
    // 3 mediocre honest workers drowned by 5 spammers: a 1/3 golden
    // reveal gives ZC exact quality anchors, which must not make things
    // worse and should keep quality above the blind floor.
    let d = adversarial_log(300, 3, 0.65, 0, 5, 6);
    let blind = run(Method::Zc, &d);
    let revealed: Vec<Option<Answer>> = (0..300)
        .map(|t| if t % 3 == 0 { d.truth(t) } else { None })
        .collect();
    let opts = InferenceOptions {
        golden: Some(revealed),
        ..InferenceOptions::seeded(5)
    };
    let r = Method::Zc.build().infer(&d, &opts).unwrap();
    let eval: Vec<usize> = (0..300).filter(|t| t % 3 != 0).collect();
    let rescued = crowd_truth::metrics::accuracy_on(&d, &r.truths, Some(&eval));
    assert!(
        rescued >= blind - 0.03,
        "golden reveal hurt ZC: blind {blind}, with golden {rescued}"
    );
    assert!(
        rescued > 0.55,
        "rescued accuracy {rescued} below the useful floor"
    );
}
