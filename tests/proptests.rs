#![allow(clippy::needless_range_loop)]

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use crowd_truth::core::{InferenceOptions, Method};
use crowd_truth::data::{Answer, DatasetBuilder, TaskType};
use crowd_truth::metrics::{accuracy, f1_score, mae, rmse};
use crowd_truth::stats::{chi2_cdf, chi2_inv_cdf, log_sum_exp, weighted_mean, weighted_median};

/// A random categorical answer log: (n, m, ℓ, edges, truths).
fn categorical_dataset(
    max_tasks: usize,
    max_workers: usize,
) -> impl Strategy<Value = crowd_truth::data::Dataset> {
    (2usize..max_tasks, 2usize..max_workers, 2u8..5).prop_flat_map(|(n, m, l)| {
        let edges = proptest::collection::vec((0..n, 0..m, 0..l), 1..(n * m).min(300));
        let truths = proptest::collection::vec(proptest::option::of(0..l), n);
        (Just((n, m, l)), edges, truths).prop_map(|((n, m, l), edges, truths)| {
            let mut b = DatasetBuilder::new("prop", TaskType::SingleChoice { choices: l }, n, m);
            let mut seen = std::collections::HashSet::new();
            for (t, w, a) in edges {
                if seen.insert((t, w)) {
                    b.add_label(t, w, a).expect("valid by construction");
                }
            }
            for (t, truth) in truths.into_iter().enumerate() {
                if let Some(tr) = truth {
                    b.set_truth_label(t, tr).expect("valid by construction");
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every method that accepts the dataset returns structurally valid
    /// results on arbitrary answer logs — no panics, right lengths,
    /// normalized posteriors, labels in range.
    #[test]
    fn methods_are_total_on_arbitrary_categorical_logs(
        dataset in categorical_dataset(12, 8),
        seed in 0u64..1000,
    ) {
        if dataset.num_answers() == 0 {
            return Ok(());
        }
        for method in [Method::Mv, Method::Zc, Method::Ds, Method::Lfc, Method::Pm,
                       Method::Catd, Method::Bcc, Method::Glad] {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                continue;
            }
            let result = instance.infer(&dataset, &InferenceOptions::seeded(seed)).unwrap();
            prop_assert_eq!(result.truths.len(), dataset.num_tasks());
            prop_assert_eq!(result.worker_quality.len(), dataset.num_workers());
            let l = dataset.num_choices().unwrap();
            for t in &result.truths {
                prop_assert!(t.label().unwrap() < l);
            }
            if let Some(post) = &result.posteriors {
                for p in post {
                    let s: f64 = p.iter().sum();
                    prop_assert!((s - 1.0).abs() < 1e-6, "posterior sum {}", s);
                }
            }
        }
    }

    /// Metrics stay in their documented ranges on arbitrary inputs: in
    /// `[0, 1]` when anything is evaluable, `NaN` (never a fake `0.0`)
    /// when the log has no ground truth at all.
    #[test]
    fn metrics_stay_in_range(
        dataset in categorical_dataset(15, 6),
        seed in 0u64..100,
    ) {
        if dataset.num_answers() == 0 {
            return Ok(());
        }
        let r = Method::Mv.build().infer(&dataset, &InferenceOptions::seeded(seed)).unwrap();
        let a = accuracy(&dataset, &r.truths);
        let f = f1_score(&dataset, &r.truths);
        if dataset.truths().iter().any(|t| t.is_some()) {
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!((0.0..=1.0).contains(&f));
        } else {
            prop_assert!(a.is_nan());
            prop_assert!(f.is_nan());
        }
    }

    /// MV is invariant under worker relabelling: only counts matter.
    #[test]
    fn mv_depends_only_on_counts(
        dataset in categorical_dataset(10, 6),
        seed in 0u64..50,
    ) {
        if dataset.num_answers() == 0 {
            return Ok(());
        }
        // Rebuild with reversed worker ids.
        let m = dataset.num_workers();
        let mut b = DatasetBuilder::new(
            "perm", dataset.task_type(), dataset.num_tasks(), m,
        );
        for rec in dataset.records() {
            b.add_answer(rec.task, m - 1 - rec.worker, rec.answer).unwrap();
        }
        for (t, truth) in dataset.truths().iter().enumerate() {
            if let Some(tr) = truth {
                b.set_truth(t, *tr).unwrap();
            }
        }
        let permuted = b.build();
        let a = Method::Mv.build().infer(&dataset, &InferenceOptions::seeded(seed)).unwrap();
        let b = Method::Mv.build().infer(&permuted, &InferenceOptions::seeded(seed)).unwrap();
        // Posteriors (pre-tie-break) must be identical per task.
        prop_assert_eq!(a.posteriors.unwrap(), b.posteriors.unwrap());
    }

    /// Numeric aggregation brackets: Mean/Median estimates lie within the
    /// per-task answer range.
    #[test]
    fn numeric_estimates_stay_in_answer_hull(
        values in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 1..6), 1..10
        ),
    ) {
        let n = values.len();
        let m = values.iter().map(|v| v.len()).max().unwrap();
        let mut b = DatasetBuilder::new("hull", TaskType::Numeric, n, m);
        for (t, vs) in values.iter().enumerate() {
            for (w, &v) in vs.iter().enumerate() {
                b.add_numeric(t, w, v).unwrap();
            }
        }
        let d = b.build();
        for method in [Method::Mean, Method::Median] {
            let r = method.build().infer(&d, &InferenceOptions::seeded(0)).unwrap();
            for (t, vs) in values.iter().enumerate() {
                let est = r.truths[t].numeric().unwrap();
                let lo = vs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9,
                    "{} estimate {} outside [{}, {}]", method.name(), est, lo, hi);
            }
        }
    }

    /// RMSE dominates MAE on any estimate vector.
    #[test]
    fn rmse_dominates_mae(
        truths in proptest::collection::vec(-50.0f64..50.0, 2..20),
        noise in proptest::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let n = truths.len().min(noise.len());
        let mut b = DatasetBuilder::new("rm", TaskType::Numeric, n, 1);
        for t in 0..n {
            b.add_numeric(t, 0, truths[t]).unwrap();
            b.set_truth_numeric(t, truths[t]).unwrap();
        }
        let d = b.build();
        let estimates: Vec<Answer> =
            (0..n).map(|t| Answer::Numeric(truths[t] + noise[t])).collect();
        prop_assert!(rmse(&d, &estimates) >= mae(&d, &estimates) - 1e-12);
    }

    /// Chi-squared inverse CDF round-trips through the CDF.
    #[test]
    fn chi2_quantile_roundtrip(k in 1.0f64..500.0, p in 0.001f64..0.999) {
        let x = chi2_inv_cdf(k, p);
        prop_assert!(x > 0.0);
        prop_assert!((chi2_cdf(k, x) - p).abs() < 1e-6);
    }

    /// log_sum_exp equals the naive computation where the naive one is
    /// representable, and never overflows where it is not.
    #[test]
    fn log_sum_exp_matches_naive(xs in proptest::collection::vec(-30.0f64..30.0, 1..20)) {
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        prop_assert!((log_sum_exp(&xs) - naive).abs() < 1e-9);
        let shifted: Vec<f64> = xs.iter().map(|x| x + 900.0).collect();
        prop_assert!(log_sum_exp(&shifted).is_finite());
    }

    /// Weighted mean/median reduce to the unweighted versions under
    /// uniform weights, and the weighted mean is translation-equivariant.
    #[test]
    fn weighted_aggregates_are_consistent(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..30),
        shift in -50.0f64..50.0,
    ) {
        let ws = vec![1.0; xs.len()];
        let wm = weighted_mean(&xs, &ws);
        let plain: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((wm - plain).abs() < 1e-9);

        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((weighted_mean(&shifted, &ws) - (wm + shift)).abs() < 1e-9);

        // Weighted median with uniform weights is an order statistic of xs.
        let med = weighted_median(&xs, &ws);
        prop_assert!(xs.iter().any(|&x| (x - med).abs() < 1e-12));
    }
}
