//! Cross-crate integration tests: every method against every applicable
//! dataset, golden-task plumbing, IO round-trips, and determinism.

use crowd_truth::core::{InferenceOptions, Method, QualityInit};
use crowd_truth::data::datasets::PaperDataset;
use crowd_truth::data::{bootstrap_qualification, subsample_redundancy, GoldenSplit, TaskType};
use crowd_truth::metrics::{accuracy, accuracy_on, f1_score, mae, rmse};

const SCALE: f64 = 0.04;
const SEED: u64 = 2024;

#[test]
fn every_method_runs_on_every_applicable_dataset() {
    for ds in PaperDataset::ALL {
        let dataset = ds.generate(SCALE.max(0.1_f64.min(1.0) * 0.4), SEED);
        for method in Method::ALL {
            let instance = method.build();
            if !instance.supports(dataset.task_type()) {
                assert!(
                    instance
                        .infer(&dataset, &InferenceOptions::seeded(1))
                        .is_err(),
                    "{} should reject {}",
                    method.name(),
                    ds.name()
                );
                continue;
            }
            let result = instance
                .infer(&dataset, &InferenceOptions::seeded(1))
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", method.name(), ds.name()));
            assert_eq!(result.truths.len(), dataset.num_tasks());
            assert_eq!(result.worker_quality.len(), dataset.num_workers());
            assert!(result.iterations >= 1);
            // Every estimate has the right answer kind.
            for t in &result.truths {
                match dataset.task_type() {
                    TaskType::Numeric => assert!(t.numeric().is_some()),
                    _ => assert!(t.label().is_some()),
                }
            }
        }
    }
}

#[test]
fn all_methods_are_deterministic_under_seed() {
    let dataset = PaperDataset::DProduct.generate(SCALE, SEED);
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let a = method
            .build()
            .infer(&dataset, &InferenceOptions::seeded(33))
            .unwrap();
        let b = method
            .build()
            .infer(&dataset, &InferenceOptions::seeded(33))
            .unwrap();
        assert_eq!(a.truths, b.truths, "{} not deterministic", method.name());
        assert_eq!(
            a.iterations,
            b.iterations,
            "{} iteration drift",
            method.name()
        );
    }
}

#[test]
fn accuracy_beats_chance_for_all_methods_on_balanced_data() {
    let dataset = PaperDataset::DPosSent.generate(0.2, SEED);
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let result = method
            .build()
            .infer(&dataset, &InferenceOptions::seeded(9))
            .unwrap();
        let acc = accuracy(&dataset, &result.truths);
        assert!(
            acc > 0.75,
            "{} accuracy {acc} on easy balanced data",
            method.name()
        );
    }
}

#[test]
fn golden_tasks_round_trip_through_all_supporting_methods() {
    let dataset = PaperDataset::DProduct.generate(SCALE, SEED);
    let split = GoldenSplit::sample(&dataset, 0.3, 5);
    let opts = InferenceOptions {
        golden: Some(split.revealed.clone()),
        ..InferenceOptions::seeded(5)
    };
    for method in Method::ALL {
        let instance = method.build();
        if !instance.supports_golden() || !instance.supports(dataset.task_type()) {
            continue;
        }
        let result = instance.infer(&dataset, &opts).unwrap();
        for &t in &split.golden {
            assert_eq!(
                Some(result.truths[t]),
                dataset.truth(t),
                "{} did not clamp golden task {t}",
                method.name()
            );
        }
    }
}

#[test]
fn qualification_round_trips_through_all_supporting_methods() {
    let dataset = PaperDataset::SRel.generate(0.02, SEED);
    let qual = bootstrap_qualification(&dataset, 20, 3);
    let opts = InferenceOptions {
        quality_init: QualityInit::Qualification(qual.accuracy),
        ..InferenceOptions::seeded(3)
    };
    for method in Method::ALL {
        let instance = method.build();
        if !instance.supports_qualification() || !instance.supports(dataset.task_type()) {
            continue;
        }
        let result = instance.infer(&dataset, &opts).unwrap();
        let acc = accuracy(&dataset, &result.truths);
        assert!(
            acc > 0.3,
            "{} collapsed with qualification init: {acc}",
            method.name()
        );
    }
}

#[test]
fn subsampled_dataset_is_valid_input_for_all_methods() {
    let dataset = PaperDataset::DPosSent.generate(0.1, SEED);
    let sub = subsample_redundancy(&dataset, 1, 4); // the harshest case
    for method in Method::for_task_type(TaskType::DecisionMaking) {
        let result = method
            .build()
            .infer(&sub, &InferenceOptions::seeded(4))
            .unwrap();
        assert_eq!(result.truths.len(), sub.num_tasks());
    }
}

#[test]
fn tsv_round_trip_preserves_inference_results() {
    let dataset = PaperDataset::DProduct.generate(0.02, SEED);
    let dir = std::env::temp_dir().join(format!("crowd_it_tsv_{}", std::process::id()));
    crowd_truth::data::io::write_tsv(&dataset, &dir).unwrap();
    let loaded = crowd_truth::data::io::read_tsv(
        &dir.join("answers.tsv"),
        Some(&dir.join("truths.tsv")),
        TaskType::DecisionMaking,
        "roundtrip",
    )
    .unwrap();
    // MV is permutation-equivariant, so accuracy must match exactly even
    // though task indices may be renumbered.
    let a = Method::Mv
        .build()
        .infer(&dataset, &InferenceOptions::seeded(0))
        .unwrap();
    let b = Method::Mv
        .build()
        .infer(&loaded, &InferenceOptions::seeded(0))
        .unwrap();
    let (acc_a, acc_b) = (accuracy(&dataset, &a.truths), accuracy(&loaded, &b.truths));
    assert!(
        (acc_a - acc_b).abs() < 0.02,
        "roundtrip shifted MV accuracy: {acc_a} vs {acc_b}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_agree_with_manual_computation_on_inference_output() {
    let dataset = PaperDataset::DProduct.generate(0.02, SEED);
    let result = Method::Ds
        .build()
        .infer(&dataset, &InferenceOptions::seeded(2))
        .unwrap();
    // Manual accuracy.
    let mut total = 0;
    let mut correct = 0;
    for (task, truth) in dataset.truths().iter().enumerate() {
        if let Some(t) = truth {
            total += 1;
            if &result.truths[task] == t {
                correct += 1;
            }
        }
    }
    let manual = correct as f64 / total as f64;
    assert!((accuracy(&dataset, &result.truths) - manual).abs() < 1e-12);
    // Restricting to all truth-labelled tasks changes nothing.
    let all: Vec<usize> = (0..dataset.num_tasks())
        .filter(|&t| dataset.truth(t).is_some())
        .collect();
    assert!((accuracy_on(&dataset, &result.truths, Some(&all)) - manual).abs() < 1e-12);
    // F1 is within [0, 1].
    let f1 = f1_score(&dataset, &result.truths);
    assert!((0.0..=1.0).contains(&f1));
}

#[test]
fn numeric_methods_error_is_finite_and_ordered() {
    let dataset = PaperDataset::NEmotion.generate(0.5, SEED);
    for method in Method::for_task_type(TaskType::Numeric) {
        let result = method
            .build()
            .infer(&dataset, &InferenceOptions::seeded(8))
            .unwrap();
        let m = mae(&dataset, &result.truths);
        let r = rmse(&dataset, &result.truths);
        assert!(m.is_finite() && r.is_finite(), "{}", method.name());
        assert!(r >= m, "{}: RMSE {r} < MAE {m}", method.name());
        assert!(m < 30.0, "{}: implausible MAE {m}", method.name());
    }
}
