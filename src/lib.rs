//! # crowd-truth — Truth Inference in Crowdsourcing
//!
//! A Rust reproduction of the VLDB 2017 benchmark *"Truth Inference in
//! Crowdsourcing: Is the Problem Solved?"* (Zheng, Li, Li, Shan, Cheng —
//! PVLDB 10(5):541–552): seventeen truth-inference algorithms behind one
//! trait, statistically matched simulators for the paper's five datasets,
//! the paper's evaluation metrics, and an experiment harness that
//! regenerates every table and figure.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`stats`] — numerical substrate (special functions, chi-squared
//!   quantiles, samplers, histograms, convergence tracking)
//! - [`data`] — task/worker/answer data model, dataset simulators, golden
//!   tasks, TSV IO
//! - [`core`] — the 17 inference methods and the [`core::TruthInference`]
//!   trait
//! - [`stream`] — incremental inference over live answer streams
//!   (delta-buffered CSR views, warm-start re-convergence)
//! - [`serve`] — multi-session service core: sharded stream engines
//!   behind a bounded async-style ingest front, drained on the worker
//!   pool with budgeted re-convergence
//! - [`metrics`] — Accuracy, F1, MAE, RMSE, consistency, worker statistics
//! - [`experiments`] — runners for Tables 5–7 and Figures 2–9
//!
//! # Quickstart
//!
//! ```
//! use crowd_truth::prelude::*;
//!
//! // The paper's running example (Tables 1–2): six entity-resolution
//! // tasks answered by three workers.
//! let dataset = crowd_truth::data::toy::paper_example();
//!
//! // Run PM (the method walked through in Section 3 of the paper).
//! let result = Pm::default().infer(&dataset, &InferenceOptions::default()).unwrap();
//!
//! // PM recovers the ground truth: t1 and t6 are true, the rest false.
//! let acc = accuracy(&dataset, &result.truths);
//! assert!((acc - 1.0).abs() < 1e-9);
//! ```

pub use crowd_core as core;
pub use crowd_data as data;
pub use crowd_experiments as experiments;
pub use crowd_metrics as metrics;
pub use crowd_serve as serve;
pub use crowd_stats as stats;
pub use crowd_stream as stream;

/// Commonly used items: the inference trait, every method, the dataset
/// type, and the headline metrics.
pub mod prelude {
    pub use crowd_core::methods::{
        Bcc, Catd, Cbcc, Ds, Glad, Kos, Lfc, LfcN, MeanAgg, MedianAgg, Minimax, Multi, Mv, Pm,
        ViBp, ViMf, Zc,
    };
    pub use crowd_core::{
        registry, InferenceOptions, InferenceResult, Method, TruthInference, WarmStart,
        WorkerQuality,
    };
    pub use crowd_data::{Answer, Dataset, DatasetBuilder, StreamSession, TaskType};
    pub use crowd_metrics::{accuracy, f1_score, mae, rmse};
    pub use crowd_serve::{CrowdServe, ServeConfig, SessionId};
    pub use crowd_stream::{ConvergeBudget, StreamConfig, StreamEngine};
}
